// Metric spot-checks against published formulas — further validation that
// the reconstructed topology definitions are the intended graphs.
#include <gtest/gtest.h>

#include "graph/traversal.hpp"
#include "test_util.hpp"

namespace mmdiag {
namespace {

struct DiameterCase {
  std::string spec;
  std::uint32_t diameter;
};

class KnownDiameters : public ::testing::TestWithParam<DiameterCase> {};

TEST_P(KnownDiameters, ExactBfsDiameterMatches) {
  test::Instance inst(GetParam().spec);
  EXPECT_EQ(diameter(inst.graph), GetParam().diameter)
      << inst.topo->info().name;
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, KnownDiameters,
    ::testing::Values(
        // Hypercube: diameter n.
        DiameterCase{"hypercube 4", 4}, DiameterCase{"hypercube 6", 6},
        // Crossed cube: ceil((n+1)/2) (Efe) — the headline improvement.
        DiameterCase{"crossed_cube 4", 3}, DiameterCase{"crossed_cube 5", 3},
        DiameterCase{"crossed_cube 6", 4}, DiameterCase{"crossed_cube 7", 4},
        // Folded hypercube: ceil(n/2).
        DiameterCase{"folded_hypercube 4", 2},
        DiameterCase{"folded_hypercube 6", 3},
        DiameterCase{"folded_hypercube 7", 4},
        // Augmented cube: ceil(n/2) (Choudum & Sunitha).
        DiameterCase{"augmented_cube 4", 2},
        DiameterCase{"augmented_cube 6", 3},
        // k-ary n-cube: n * floor(k/2).
        DiameterCase{"kary_ncube 2 5", 4}, DiameterCase{"kary_ncube 3 4", 6},
        DiameterCase{"kary_ncube 2 8", 8},
        // Star graph: floor(3(n-1)/2) (Akers-Krishnamurthy).
        DiameterCase{"star 4", 4}, DiameterCase{"star 5", 6},
        DiameterCase{"star 6", 7},
        // Pancake: known exact values 3, 4, 5, 7 for n = 3..6.
        DiameterCase{"pancake 3", 3}, DiameterCase{"pancake 4", 4},
        DiameterCase{"pancake 5", 5}, DiameterCase{"pancake 6", 7}),
    [](const ::testing::TestParamInfo<DiameterCase>& info) {
      std::string name = info.param.spec;
      for (auto& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(Bipartiteness, HypercubesAndToriWithEvenK) {
  // Q_n and Q^k_n with even k are bipartite; odd cycles appear otherwise.
  auto is_bipartite = [](const Graph& g) {
    std::vector<int> color(g.num_nodes(), -1);
    std::vector<Node> queue;
    color[0] = 0;
    queue.push_back(0);
    for (std::size_t h = 0; h < queue.size(); ++h) {
      for (const Node w : g.neighbors(queue[h])) {
        if (color[w] == -1) {
          color[w] = 1 - color[queue[h]];
          queue.push_back(w);
        } else if (color[w] == color[queue[h]]) {
          return false;
        }
      }
    }
    return true;
  };
  EXPECT_TRUE(is_bipartite(test::Instance("hypercube 5").graph));
  EXPECT_TRUE(is_bipartite(test::Instance("star 5").graph));
  EXPECT_TRUE(is_bipartite(test::Instance("kary_ncube 2 6").graph));
  EXPECT_FALSE(is_bipartite(test::Instance("kary_ncube 2 5").graph));
  EXPECT_FALSE(is_bipartite(test::Instance("folded_hypercube 4").graph));
  EXPECT_FALSE(is_bipartite(test::Instance("augmented_cube 3").graph));
}

TEST(EdgeCounts, MatchRegularityFormula) {
  for (const char* spec : {"hypercube 6", "crossed_cube 6", "augmented_cube 5",
                           "star 5", "arrangement 6 3", "kary_ncube 3 4"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const auto info = inst.topo->info();
    EXPECT_EQ(inst.graph.num_edges(), info.num_nodes * info.degree / 2);
  }
}

TEST(VertexTransitivitySpotCheck, DegreeSequencesUniform) {
  // All fourteen families are regular; additionally eccentricities of a few
  // sampled nodes agree on the vertex-transitive families.
  for (const char* spec : {"hypercube 5", "crossed_cube 5", "star 5",
                           "pancake 5", "kary_ncube 2 6"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const auto e0 = eccentricity(inst.graph, 0);
    const auto mid = static_cast<Node>(inst.graph.num_nodes() / 2);
    // Hypercubes/stars/pancakes/tori are vertex-transitive: all nodes share
    // one eccentricity. (Crossed cubes are not; skip the assertion there.)
    if (std::string(spec) != "crossed_cube 5") {
      EXPECT_EQ(eccentricity(inst.graph, mid), e0);
    }
  }
}

}  // namespace
}  // namespace mmdiag
