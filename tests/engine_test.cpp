// DiagnosisEngine: thread-safe LRU calibration cache semantics (single
// build per key under racing misses, LRU eviction, eviction safety through
// shared ownership) and bit-identical equivalence with directly constructed
// Diagnosers across every registry family.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/diagnoser.hpp"
#include "engine/engine.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mmdiag {
namespace {

/// One certifiable (spec, delta) pair per registry family — the explicit
/// deltas keep small instances inside their §5 validity window.
struct FamilyCase {
  const char* spec;
  unsigned delta;
};
constexpr FamilyCase kEveryFamily[] = {
    {"hypercube 5", 3},          {"crossed_cube 5", 3},
    {"twisted_cube 5", 3},       {"folded_hypercube 5", 3},
    {"enhanced_hypercube 5 2", 3}, {"augmented_cube 6", 3},
    {"shuffle_cube 6", 3},       {"twisted_n_cube 5", 3},
    {"kary_ncube 2 6", 3},       {"augmented_kary_ncube 3 4", 3},
    {"star 4", 3},               {"nk_star 5 3", 4},
    {"pancake 4", 3},            {"arrangement 5 3", 4},
};

void expect_bit_identical(const DiagnosisResult& direct,
                          const DiagnosisResult& engine, std::size_t item) {
  ASSERT_EQ(direct.success, engine.success) << "item " << item;
  ASSERT_EQ(direct.faults, engine.faults) << "item " << item;
  ASSERT_EQ(direct.lookups, engine.lookups) << "item " << item;
  ASSERT_EQ(direct.probes, engine.probes) << "item " << item;
  ASSERT_EQ(direct.certified_component, engine.certified_component)
      << "item " << item;
  ASSERT_EQ(direct.final_members, engine.final_members) << "item " << item;
  ASSERT_EQ(direct.final_rounds, engine.final_rounds) << "item " << item;
  ASSERT_EQ(direct.failure_reason, engine.failure_reason) << "item " << item;
}

TEST(DiagnosisEngine, BitIdenticalToDirectDiagnoserForEveryFamily) {
  EngineOptions options;
  options.cache_capacity = std::size(kEveryFamily);
  options.diagnoser.delta = 0;  // per-call explicit deltas below
  DiagnosisEngine engine(options);
  for (const FamilyCase& family : kEveryFamily) {
    SCOPED_TRACE(family.spec);
    test::Instance inst(family.spec);
    DiagnoserOptions direct_options;
    direct_options.delta = family.delta;
    Diagnoser direct(*inst.topo, inst.graph, direct_options);
    const auto cal =
        engine.calibration(family.spec, family.delta, ParentRule::kSpread);
    EXPECT_EQ(cal->delta(), family.delta);
    EXPECT_EQ(cal->spec, inst.topo->spec());
    for (std::size_t i = 0; i < 4; ++i) {
      Rng rng(300 + i);
      const FaultSet faults(
          inst.graph.num_nodes(),
          inject_uniform(inst.graph.num_nodes(), i % (family.delta + 1), rng));
      const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, i);
      // Engine-side Diagnoser adopts the cached calibration through shared
      // ownership; the direct one calibrated from scratch.
      Diagnoser routed(graph_handle(cal), cal->partition, direct_options);
      expect_bit_identical(direct.diagnose(oracle), routed.diagnose(oracle),
                           i);
    }
  }
}

TEST(DiagnosisEngine, ServeMatchesDirectAndFlagsReuse) {
  EngineOptions options;
  options.cache_capacity = 4;
  options.threads = 3;
  DiagnosisEngine engine(options);
  const char* specs[] = {"hypercube 7", "star 5", "hypercube 7", "star 5",
                         "hypercube 7"};
  std::vector<FaultSet> faults;
  std::vector<LazyOracle> oracles;
  std::vector<EngineRequest> requests;
  faults.reserve(std::size(specs));
  oracles.reserve(std::size(specs));
  for (std::size_t i = 0; i < std::size(specs); ++i) {
    const test::Instance inst(specs[i]);
    Rng rng(40 + i);
    faults.emplace_back(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 2, rng));
  }
  // Oracles must address the engine's graphs? No — any equal-content graph
  // works; use per-request instances exactly like external callers do.
  std::vector<std::unique_ptr<test::Instance>> insts;
  for (std::size_t i = 0; i < std::size(specs); ++i) {
    insts.push_back(std::make_unique<test::Instance>(specs[i]));
    oracles.emplace_back(insts.back()->graph, faults[i],
                         FaultyBehavior::kRandom, i);
    requests.push_back(EngineRequest{specs[i], &oracles.back()});
  }
  const std::vector<DiagnosisResult> served = engine.serve(requests);
  ASSERT_EQ(served.size(), std::size(specs));
  for (std::size_t i = 0; i < served.size(); ++i) {
    SCOPED_TRACE(i);
    Diagnoser direct(*insts[i]->topo, insts[i]->graph);
    expect_bit_identical(direct.diagnose(oracles[i]), served[i], i);
  }
  // Exactly two calibrations behind five requests. The cold count may
  // exceed two: a lane racing the builder blocks for the build and is
  // honestly attributed as not-reused even though the counters score a hit.
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.entries, 2u);
  std::size_t cold = 0;
  for (const DiagnosisResult& r : served) cold += r.calibration_reused ? 0 : 1;
  EXPECT_GE(cold, 2u);
  EXPECT_LE(cold, served.size());
}

TEST(DiagnosisEngine, ServeIsolatesPerRequestFailures) {
  DiagnosisEngine engine;
  test::Instance inst("hypercube 7");
  Rng rng(7);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 3, rng));
  const LazyOracle good(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const LazyOracle doomed(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const std::vector<EngineRequest> requests = {
      {"hypercube 7", &good},
      {"no_such_family 3", &doomed},   // unknown spec
      {"hypercube 7", nullptr},        // null oracle
  };
  const std::vector<DiagnosisResult> served = engine.serve(requests);
  ASSERT_EQ(served.size(), 3u);
  EXPECT_TRUE(served[0].success) << served[0].failure_reason;
  EXPECT_FALSE(served[1].success);
  EXPECT_NE(served[1].failure_reason.find("no_such_family"),
            std::string::npos);
  EXPECT_FALSE(served[2].success);
  EXPECT_NE(served[2].failure_reason.find("null oracle"), std::string::npos);
}

TEST(DiagnosisEngine, CanonicalSpecSharingAcrossSpellings) {
  DiagnosisEngine engine;
  const auto a = engine.calibration("hypercube 7");
  const auto b = engine.calibration("  hypercube \t 07 ");
  EXPECT_EQ(a.get(), b.get()) << "spellings of one instance must share";
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.entries, 1u);
  // Distinct calibration parameters are distinct entries of the same spec.
  const auto c = engine.calibration("hypercube 7", 3, ParentRule::kSpread);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(engine.counters().misses, 2u);
}

TEST(DiagnosisEngine, CalibratesOncePerKeyUnderRacingMisses) {
  // N pool workers all miss on the same 4 specs at once; the striped build
  // locks must collapse every race to exactly one build per key.
  const char* specs[] = {"hypercube 7", "star 5", "kary_ncube 4 4",
                         "pancake 5"};
  EngineOptions options;
  options.cache_capacity = std::size(specs);
  options.threads = 1;
  DiagnosisEngine engine(options);
  ThreadPool pool(8);
  constexpr std::size_t kCalls = 64;
  std::vector<const Calibration*> seen(kCalls, nullptr);
  std::atomic<std::size_t> failures{0};
  pool.parallel_for(kCalls, [&](unsigned, std::size_t i) {
    try {
      seen[i] = engine.calibration(specs[i % std::size(specs)]).get();
    } catch (const std::exception&) {
      ++failures;
    }
  });
  ASSERT_EQ(failures.load(), 0u);
  // Pointer identity per spec: every call got the one shared bundle.
  std::set<const Calibration*> distinct;
  for (std::size_t i = 0; i < kCalls; ++i) {
    ASSERT_NE(seen[i], nullptr) << "call " << i;
    ASSERT_EQ(seen[i], seen[i % std::size(specs)]) << "call " << i;
    distinct.insert(seen[i]);
  }
  EXPECT_EQ(distinct.size(), std::size(specs));
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.misses, std::size(specs));
  EXPECT_EQ(counters.hits, kCalls - std::size(specs));
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.entries, std::size(specs));
}

TEST(DiagnosisEngine, LruEvictionOrderAndRebuild) {
  const std::string a = "hypercube 7", b = "star 5", c = "kary_ncube 4 4";
  EngineOptions options;
  options.cache_capacity = 2;
  options.threads = 1;
  DiagnosisEngine engine(options);
  const auto cal_a = engine.calibration(a);  // miss: {a}
  (void)engine.calibration(b);               // miss: {b, a}
  (void)engine.calibration(a);               // hit:  {a, b}
  (void)engine.calibration(c);               // miss, evicts b: {c, a}
  EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.misses, 3u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
  // a stayed resident (it was freshened by its hit), b must rebuild.
  EXPECT_EQ(engine.calibration(a).get(), cal_a.get());
  (void)engine.calibration(b);
  counters = engine.counters();
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.evictions, 2u);
  EXPECT_EQ(counters.entries, 2u);
}

TEST(DiagnosisEngine, TwoEntryLruOverFourSpecsHammeredByWorkers) {
  // The adversarial shape: 4 specs racing through a 2-entry LRU from 8 pool
  // workers. Whatever interleaving happens, every calibration handed out
  // must be the right instance, counters must balance, and the engine must
  // end with at most 2 resident entries.
  const FamilyCase hammer[] = {{"hypercube 5", 3},
                               {"crossed_cube 5", 3},
                               {"star 4", 3},
                               {"pancake 4", 3}};
  EngineOptions options;
  options.cache_capacity = 2;
  options.threads = 1;
  DiagnosisEngine engine(options);
  ThreadPool pool(8);
  constexpr std::size_t kCalls = 96;
  std::atomic<std::size_t> wrong{0}, failures{0};
  std::vector<std::shared_ptr<const Calibration>> held(kCalls);
  pool.parallel_for(kCalls, [&](unsigned, std::size_t i) {
    const FamilyCase& fc = hammer[(i * 2654435761u) % std::size(hammer)];
    try {
      auto cal = engine.calibration(fc.spec, fc.delta, ParentRule::kSpread);
      if (cal->spec != fc.spec || cal->delta() != fc.delta) ++wrong;
      held[i] = std::move(cal);  // outlive any eviction
    } catch (const std::exception&) {
      ++failures;
    }
  });
  ASSERT_EQ(failures.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u);
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.hits + counters.misses, kCalls);
  EXPECT_GE(counters.misses, std::size(hammer));  // each key built >= once
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LE(counters.entries, 2u);
  // Eviction safety: every handle held across evictions still diagnoses.
  for (const std::size_t i : {std::size_t{0}, kCalls - 1}) {
    const auto& cal = held[i];
    ASSERT_NE(cal, nullptr);
    Rng rng(17);
    const FaultSet faults(cal->graph.num_nodes(),
                          inject_uniform(cal->graph.num_nodes(), 2, rng));
    const LazyOracle oracle(cal->graph, faults, FaultyBehavior::kRandom, 5);
    Diagnoser diagnoser(graph_handle(cal), cal->partition);
    const DiagnosisResult r = diagnoser.diagnose(oracle);
    ASSERT_TRUE(r.success) << r.failure_reason;
    EXPECT_EQ(test::sorted(r.faults), test::sorted(faults.nodes()));
  }
}

TEST(DiagnosisEngine, SharedOwnershipOutlivesTheEngine) {
  std::unique_ptr<Diagnoser> diagnoser;
  std::unique_ptr<BatchDiagnoser> batch;
  {
    DiagnosisEngine engine;
    diagnoser = engine.make_diagnoser("hypercube 7");
    batch = engine.make_batch_diagnoser("hypercube 7", 2);
  }  // engine (and its cache) destroyed; the bundles live on
  test::Instance inst("hypercube 7");
  Rng rng(23);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 4, rng));
  const LazyOracle a(inst.graph, faults, FaultyBehavior::kAntiDiagnostic, 9);
  const LazyOracle b(inst.graph, faults, FaultyBehavior::kAntiDiagnostic, 9);
  const DiagnosisResult direct = Diagnoser(*inst.topo, inst.graph).diagnose(a);
  expect_bit_identical(direct, diagnoser->diagnose(b), 0);
  const LazyOracle c(inst.graph, faults, FaultyBehavior::kAntiDiagnostic, 9);
  const BatchResult batched = batch->diagnose_all({&c});
  ASSERT_EQ(batched.results.size(), 1u);
  expect_bit_identical(direct, batched.results[0], 1);
}

TEST(DiagnosisEngine, DiagnoseFillsTheAmortisationSplit) {
  DiagnosisEngine engine;
  test::Instance inst("star 5");
  Rng rng(3);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 2, rng));
  const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const DiagnosisResult cold = engine.diagnose("star 5", o1);
  const DiagnosisResult warm = engine.diagnose("star 5", o2);
  ASSERT_TRUE(cold.success);
  ASSERT_TRUE(warm.success);
  EXPECT_FALSE(cold.calibration_reused);
  EXPECT_TRUE(warm.calibration_reused);
  EXPECT_GT(cold.setup_seconds, 0.0);
  EXPECT_GT(warm.setup_seconds, 0.0);
  EXPECT_GT(cold.diagnose_seconds, 0.0);
  // The direct path leaves the split untouched.
  const LazyOracle o3(inst.graph, faults, FaultyBehavior::kRandom, 1);
  Diagnoser direct(*inst.topo, inst.graph);
  const DiagnosisResult d = direct.diagnose(o3);
  EXPECT_FALSE(d.calibration_reused);
  EXPECT_EQ(d.setup_seconds, 0.0);
  EXPECT_GT(d.diagnose_seconds, 0.0);
}

TEST(DiagnosisEngine, UnsupportedBoundsAndBadSpecsThrow) {
  DiagnosisEngine engine;
  // Q5 at its default bound 5 cannot certify (the seed's failure_test
  // regime); the engine must surface the same DiagnosisUnsupportedError the
  // direct Diagnoser gives, and must not cache a broken entry.
  EXPECT_THROW((void)engine.calibration("hypercube 5"),
               DiagnosisUnsupportedError);
  EXPECT_THROW((void)engine.calibration("no_such_family 4"),
               std::invalid_argument);
  EXPECT_THROW((void)engine.calibration("hypercube junk"),
               std::invalid_argument);
  EXPECT_EQ(engine.counters().entries, 0u);
  EXPECT_EQ(engine.counters().misses, 0u);
  // The same instance still calibrates at a supported explicit bound.
  EXPECT_NO_THROW((void)engine.calibration("hypercube 5", 3,
                                           ParentRule::kSpread));
}

TEST(DiagnosisEngine, ImplicitModeIsBitIdenticalAndMaterialisesNoEdges) {
  EngineOptions csr_options;
  csr_options.graph_mode = GraphMode::kCsr;
  DiagnosisEngine csr_engine(csr_options);

  EngineOptions imp_options;
  imp_options.graph_mode = GraphMode::kImplicit;
  DiagnosisEngine imp_engine(imp_options);

  const char* spec = "hypercube 8";
  const auto csr_cal = csr_engine.calibration(spec);
  const auto imp_cal = imp_engine.calibration(spec);
  EXPECT_FALSE(csr_cal->is_implicit());
  EXPECT_TRUE(imp_cal->is_implicit());
  // The implicit calibration holds no CSR arrays at all.
  EXPECT_EQ(imp_cal->graph.num_nodes(), 0u);
  ASSERT_NE(imp_cal->implicit_view, nullptr);
  EXPECT_EQ(imp_cal->implicit_view->num_nodes(), csr_cal->graph.num_nodes());
  // Same certified plan, same calibration budget.
  EXPECT_EQ(csr_cal->partition.plan->description(),
            imp_cal->partition.plan->description());
  EXPECT_EQ(csr_cal->partition.calibration_lookups,
            imp_cal->partition.calibration_lookups);

  const test::Instance inst(spec);
  const std::size_t n = inst.graph.num_nodes();
  const ImplicitGraph iview(*inst.topo);
  for (std::size_t i = 0; i < 4; ++i) {
    Rng rng(500 + i);
    const FaultSet faults(n, inject_uniform(n, i, rng));
    const LazyOracle lazy(inst.graph, faults, FaultyBehavior::kRandom, i);
    const ImplicitLazyOracle ilazy(iview, faults, FaultyBehavior::kRandom, i);
    expect_bit_identical(csr_engine.diagnose(spec, lazy),
                         imp_engine.diagnose(spec, ilazy), i);
  }

  // Batch lanes address syndrome rows through the materialised CSR layout.
  EXPECT_THROW((void)imp_engine.make_batch_diagnoser(spec),
               std::invalid_argument);
  EXPECT_NO_THROW((void)csr_engine.make_batch_diagnoser(spec));
}

TEST(DiagnosisEngine, AutoModeKeepsSmallInstancesOnCsr) {
  // kAuto flips to implicit only at kImplicitAutoNodeThreshold (2^17)
  // nodes; everything in the test-sized range stays CSR so the batch and
  // cohort paths keep working by default.
  DiagnosisEngine engine;  // graph_mode = kAuto
  const auto cal = engine.calibration("hypercube 8");
  EXPECT_FALSE(cal->is_implicit());
  EXPECT_GT(cal->graph.num_nodes(), 0u);
  TopologyInfo big;
  big.num_nodes = std::uint64_t{1} << 20;
  big.degree = 20;
  EXPECT_TRUE(resolve_implicit_mode(GraphMode::kAuto, big));
  big.degree = 65;  // past the implicit ceiling: stays CSR even at scale
  EXPECT_FALSE(resolve_implicit_mode(GraphMode::kAuto, big));
}

// ---- Explicit invalidation -------------------------------------------------

TEST(DiagnosisEngine, InvalidateRetiresEveryVariantOfASpec) {
  DiagnosisEngine engine;
  // Two calibration variants of one spec (distinct cache keys) plus an
  // unrelated spec that must survive the targeted invalidation.
  (void)engine.calibration("hypercube 5", 3, ParentRule::kSpread, true);
  (void)engine.calibration("hypercube 5", 3, ParentRule::kSpread, false);
  (void)engine.calibration("star 4", 3, ParentRule::kSpread);
  EXPECT_EQ(engine.counters().entries, 3u);

  // Canonicalisation: an odd spelling retires the same stem, all variants.
  EXPECT_EQ(engine.invalidate(" hypercube  05"), 2u);
  EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(counters.evictions_explicit, 2u);
  EXPECT_EQ(counters.evictions_lru, 0u);
  EXPECT_EQ(counters.evictions, 2u);

  // Unknown specs throw instead of silently matching nothing.
  EXPECT_THROW((void)engine.invalidate("not_a_topology 3"),
               std::invalid_argument);

  EXPECT_EQ(engine.invalidate_all(), 1u);
  counters = engine.counters();
  EXPECT_EQ(counters.entries, 0u);
  EXPECT_EQ(counters.evictions_explicit, 3u);

  // The next request is a plain rebuild, not an error.
  EXPECT_NE(engine.calibration("hypercube 5", 3, ParentRule::kSpread), nullptr);
}

TEST(DiagnosisEngine, EvictionCountersSplitLruFromExplicit) {
  EngineOptions options;
  options.cache_capacity = 1;
  DiagnosisEngine engine(options);
  (void)engine.calibration("hypercube 5", 3, ParentRule::kSpread);
  (void)engine.calibration("star 4", 3, ParentRule::kSpread);  // LRU evicts
  EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.evictions_lru, 1u);
  EXPECT_EQ(counters.evictions_explicit, 0u);

  EXPECT_EQ(engine.invalidate_all(), 1u);
  counters = engine.counters();
  EXPECT_EQ(counters.evictions_lru, 1u);
  EXPECT_EQ(counters.evictions_explicit, 1u);
  EXPECT_EQ(counters.evictions,
            counters.evictions_lru + counters.evictions_explicit);
  EXPECT_EQ(counters.entries, 0u);
}

TEST(DiagnosisEngine, InvalidationRacingServeStaysBitIdentical) {
  // serve() under a hammering invalidate_all(): eviction only decides where
  // calibrations live (shared_ptr holders keep evicted bundles alive), so
  // every served result must stay bit-identical to the direct diagnosis.
  EngineOptions options;
  options.threads = 2;
  options.diagnoser.delta = 3;
  DiagnosisEngine engine(options);
  const std::shared_ptr<const Calibration> cal =
      engine.calibration("hypercube 5");
  const std::size_t n = cal->graph.num_nodes();
  Rng rng(0xCAFE);
  const FaultSet faults(n, inject_uniform(n, 2, rng));

  std::vector<std::unique_ptr<LazyOracle>> oracles;
  std::vector<EngineRequest> requests;
  for (int i = 0; i < 12; ++i) {
    oracles.push_back(std::make_unique<LazyOracle>(
        cal->graph, faults, FaultyBehavior::kRandom, 9));
    requests.push_back({"hypercube 5", oracles.back().get(), nullptr, kNoNode});
  }
  Diagnoser direct(cal->graph, cal->partition, options.diagnoser);
  const LazyOracle reference_oracle(cal->graph, faults, FaultyBehavior::kRandom,
                                    9);
  const DiagnosisResult expected = direct.diagnose(reference_oracle);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      (void)engine.invalidate_all();
    }
  });
  for (int round = 0; round < 8; ++round) {
    const std::vector<DiagnosisResult> results = engine.serve(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_bit_identical(expected, results[i], i);
    }
  }
  stop.store(true);
  invalidator.join();
  EXPECT_GT(engine.counters().evictions_explicit, 0u);
}

TEST(ParentRuleNames, RoundTripAndAliases) {
  for (const ParentRule rule : kAllParentRules) {
    EXPECT_EQ(parent_rule_from_string(parent_rule_to_string(rule)), rule);
  }
  EXPECT_EQ(parent_rule_from_string("least_first"), ParentRule::kLeastFirst);
  EXPECT_EQ(parent_rule_from_string("hash_spread"), ParentRule::kHashSpread);
  EXPECT_THROW((void)parent_rule_from_string("fastest"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
