// BatchDiagnoser: thread-pool correctness and bit-identical equivalence
// with the sequential Diagnoser across topology families, batch sizes, and
// thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/batch_diagnoser.hpp"
#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mmdiag {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  std::vector<unsigned> lane_of(kCount, ~0u);
  pool.parallel_for(kCount, [&](unsigned lane, std::size_t i) {
    // No gtest calls on worker threads; record and assert afterwards.
    lane_of[i] = lane;
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    ASSERT_LT(lane_of[i], pool.size()) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](unsigned lane, std::size_t i) {
    EXPECT_EQ(lane, 0u);
    order.push_back(i);  // no synchronisation needed: inline execution
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(3);
  pool.parallel_for(0, [&](unsigned, std::size_t) { FAIL(); });
}

TEST(ThreadPool, FewerItemsThanLanes) {
  // Lanes beyond the item count must park without touching any index and
  // without deadlocking the join.
  ThreadPool pool(8);
  for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}}) {
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&](unsigned lane, std::size_t i) {
      (void)lane;
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " i=" << i;
    }
  }
}

TEST(ThreadPool, SingleItemManyLanes) {
  ThreadPool pool(6);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    pool.parallel_for(1, [&](unsigned, std::size_t i) {
      ASSERT_EQ(i, 0u);
      ++hits;
    });
    ASSERT_EQ(hits.load(), 1);
  }
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
  ThreadPool pool(4);
  const auto boom = [](unsigned, std::size_t i) {
    if (i == 37) throw std::runtime_error("lane exploded");
  };
  EXPECT_THROW(pool.parallel_for(100, boom), std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(50, [&](unsigned, std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 50u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 25; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(101, [&](unsigned, std::size_t i) { sum += i; });
    ASSERT_EQ(sum.load(), 101u * 100u / 2u);
  }
}

// ---------------------------------------------------------------------------

/// A deterministic mixed batch over `spec`: fault counts 0..delta cycling,
/// all four faulty-tester behaviours.
struct TestBatch {
  std::vector<FaultSet> faults;
  std::vector<LazyOracle> oracles;
  std::vector<const SyndromeOracle*> ptrs;
};

TestBatch make_batch(const test::Instance& inst, unsigned delta,
                     std::size_t count) {
  TestBatch batch;
  batch.faults.reserve(count);
  batch.oracles.reserve(count);
  constexpr FaultyBehavior kBehaviors[] = {
      FaultyBehavior::kRandom, FaultyBehavior::kAllZero,
      FaultyBehavior::kAllOne, FaultyBehavior::kAntiDiagnostic};
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(1000 + i);
    batch.faults.emplace_back(
        inst.graph.num_nodes(),
        inject_uniform(inst.graph.num_nodes(), i % (delta + 1), rng));
  }
  for (std::size_t i = 0; i < count; ++i) {
    batch.oracles.emplace_back(inst.graph, batch.faults[i], kBehaviors[i % 4],
                               i);
  }
  for (const LazyOracle& o : batch.oracles) batch.ptrs.push_back(&o);
  return batch;
}

void expect_equivalent(const DiagnosisResult& seq, const DiagnosisResult& bat,
                       std::size_t item) {
  ASSERT_EQ(seq.success, bat.success) << "item " << item;
  ASSERT_EQ(seq.faults, bat.faults) << "item " << item;
  ASSERT_EQ(seq.lookups, bat.lookups) << "item " << item;
  ASSERT_EQ(seq.probes, bat.probes) << "item " << item;
  ASSERT_EQ(seq.certified_component, bat.certified_component)
      << "item " << item;
}

TEST(BatchDiagnoser, BitIdenticalToSequentialAcrossFamilies) {
  for (const char* spec : {"hypercube 7", "star 5", "kary_ncube 4 4"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    Diagnoser sequential(*inst.topo, inst.graph);
    const TestBatch batch = make_batch(inst, sequential.delta(), 12);

    std::vector<DiagnosisResult> truth;
    for (const SyndromeOracle* oracle : batch.ptrs) {
      truth.push_back(sequential.diagnose(*oracle));
    }

    for (const unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      BatchOptions options;
      options.threads = threads;
      BatchDiagnoser engine(*inst.topo, inst.graph, options);
      EXPECT_EQ(engine.threads(), threads);
      EXPECT_EQ(engine.delta(), sequential.delta());
      const BatchResult result = engine.diagnose_all(batch.ptrs);
      ASSERT_EQ(result.results.size(), batch.ptrs.size());
      std::uint64_t lookups = 0;
      std::size_t succeeded = 0;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        expect_equivalent(truth[i], result.results[i], i);
        lookups += truth[i].lookups;
        succeeded += truth[i].success ? 1 : 0;
      }
      EXPECT_EQ(result.total_lookups, lookups);
      EXPECT_EQ(result.succeeded, succeeded);
    }
  }
}

TEST(BatchDiagnoser, EmptyAndSingletonBatches) {
  test::Instance inst("hypercube 7");
  BatchOptions options;
  options.threads = 3;
  BatchDiagnoser engine(*inst.topo, inst.graph, options);

  const BatchResult empty = engine.diagnose_all(
      std::vector<const SyndromeOracle*>{});
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.succeeded, 0u);
  EXPECT_EQ(empty.total_lookups, 0u);

  Rng rng(7);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 3, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const BatchResult one = engine.diagnose_all({&oracle});
  ASSERT_EQ(one.results.size(), 1u);
  ASSERT_TRUE(one.results[0].success) << one.results[0].failure_reason;
  EXPECT_EQ(test::sorted(one.results[0].faults), test::sorted(faults.nodes()));
  EXPECT_EQ(one.succeeded, 1u);
  EXPECT_GT(one.total_lookups, 0u);
}

TEST(BatchDiagnoser, SyndromeVectorConvenienceOverload) {
  test::Instance inst("star 5");
  Diagnoser sequential(*inst.topo, inst.graph);
  std::vector<Syndrome> syndromes;
  std::vector<FaultSet> faults;
  for (std::size_t i = 0; i < 6; ++i) {
    Rng rng(50 + i);
    faults.emplace_back(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), i % 4, rng));
    syndromes.push_back(generate_syndrome(inst.graph, faults.back(),
                                          FaultyBehavior::kRandom, i));
  }
  BatchOptions options;
  options.threads = 2;
  BatchDiagnoser engine(*inst.topo, inst.graph, options);
  const BatchResult result = engine.diagnose_all(syndromes);
  ASSERT_EQ(result.results.size(), syndromes.size());
  for (std::size_t i = 0; i < syndromes.size(); ++i) {
    const TableOracle oracle(inst.graph, syndromes[i]);
    expect_equivalent(sequential.diagnose(oracle), result.results[i], i);
  }
}

TEST(BatchDiagnoser, SharedPartitionConstructor) {
  test::Instance inst("hypercube 7");
  Diagnoser sequential(*inst.topo, inst.graph);
  BatchOptions options;
  options.threads = 2;
  // Adopt the sequential diagnoser's partition instead of re-certifying.
  BatchDiagnoser engine(inst.graph, sequential.partition(), options);
  EXPECT_EQ(engine.partition().plan.get(), sequential.partition().plan.get());

  const TestBatch batch = make_batch(inst, sequential.delta(), 5);
  const BatchResult result = engine.diagnose_all(batch.ptrs);
  for (std::size_t i = 0; i < batch.ptrs.size(); ++i) {
    expect_equivalent(sequential.diagnose(*batch.ptrs[i]), result.results[i],
                      i);
  }
}

TEST(BatchDiagnoser, FailedItemsKeepTheirCostAndDoNotPoisonTheBatch) {
  // One undiagnosable syndrome (every probed seed faulty, all-one testers)
  // mixed into healthy traffic: its slot reports failure with nonzero
  // look-ups, every other slot is unaffected.
  test::Instance inst("hypercube 7");
  Diagnoser sequential(*inst.topo, inst.graph);
  const PartitionPlan& plan = *sequential.partition().plan;
  std::vector<Node> seeds;
  for (std::uint32_t c = 0; c < 8; ++c) seeds.push_back(plan.seed_of(c));
  const FaultSet poisoned(inst.graph.num_nodes(), seeds);  // |F| = 8 > 7
  Rng rng(3);
  const FaultSet healthy(inst.graph.num_nodes(),
                         inject_uniform(inst.graph.num_nodes(), 2, rng));

  const LazyOracle bad(inst.graph, poisoned, FaultyBehavior::kAllOne, 0);
  // Two distinct oracles over the same fault set: each oracle may be
  // consulted by exactly one lane (the look-up counter is unsynchronised).
  const LazyOracle good_a(inst.graph, healthy, FaultyBehavior::kRandom, 1);
  const LazyOracle good_b(inst.graph, healthy, FaultyBehavior::kRandom, 1);
  BatchOptions options;
  options.threads = 2;
  BatchDiagnoser engine(*inst.topo, inst.graph, options);
  const BatchResult result = engine.diagnose_all({&good_a, &bad, &good_b});

  ASSERT_EQ(result.results.size(), 3u);
  EXPECT_EQ(result.succeeded, 2u);
  EXPECT_FALSE(result.results[1].success);
  EXPECT_GT(result.results[1].lookups, 0u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(result.results[i].success);
    EXPECT_EQ(test::sorted(result.results[i].faults),
              test::sorted(healthy.nodes()));
  }
}

/// The same deterministic workload as make_batch, materialised as
/// syndrome tables so the bitsliced cohort path engages.
struct TableTestBatch {
  std::vector<FaultSet> faults;
  std::vector<Syndrome> syndromes;
  std::vector<TableOracle> oracles;
  std::vector<const SyndromeOracle*> ptrs;
};

TableTestBatch make_table_batch(const test::Instance& inst, unsigned delta,
                                std::size_t count) {
  TableTestBatch batch;
  batch.faults.reserve(count);
  batch.syndromes.reserve(count);
  batch.oracles.reserve(count);
  constexpr FaultyBehavior kBehaviors[] = {
      FaultyBehavior::kRandom, FaultyBehavior::kAllZero,
      FaultyBehavior::kAllOne, FaultyBehavior::kAntiDiagnostic};
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(1000 + i);
    batch.faults.emplace_back(
        inst.graph.num_nodes(),
        inject_uniform(inst.graph.num_nodes(), i % (delta + 1), rng));
  }
  for (std::size_t i = 0; i < count; ++i) {
    batch.syndromes.push_back(generate_syndrome(inst.graph, batch.faults[i],
                                                kBehaviors[i % 4], i));
    batch.oracles.emplace_back(inst.graph, batch.syndromes.back());
  }
  for (const TableOracle& o : batch.oracles) batch.ptrs.push_back(&o);
  return batch;
}

TEST(BatchDiagnoser, BitslicedCohortsMatchScalarAtEveryWidth) {
  // Widths straddling the 64-lane cohort boundary: 63 (no cohort forms),
  // 64 (exactly one), 65 (one cohort + one scalar straggler), 130 (two
  // cohorts + two stragglers). Each width is checked against both the
  // sequential Diagnoser and the bitsliced=false batch path.
  test::Instance inst("hypercube 7");
  Diagnoser sequential(*inst.topo, inst.graph);
  for (const std::size_t count : {std::size_t{63}, std::size_t{64},
                                  std::size_t{65}, std::size_t{130}}) {
    SCOPED_TRACE(count);
    const TableTestBatch batch =
        make_table_batch(inst, sequential.delta(), count);

    std::vector<DiagnosisResult> truth;
    for (const SyndromeOracle* oracle : batch.ptrs) {
      truth.push_back(sequential.diagnose(*oracle));
    }

    BatchOptions scalar_opts;
    scalar_opts.threads = 2;
    scalar_opts.bitsliced = false;
    BatchDiagnoser scalar_engine(*inst.topo, inst.graph, scalar_opts);
    const BatchResult scalar = scalar_engine.diagnose_all(batch.ptrs);

    BatchOptions sliced_opts;
    sliced_opts.threads = 2;
    sliced_opts.bitsliced = true;
    BatchDiagnoser sliced_engine(*inst.topo, inst.graph, sliced_opts);
    const BatchResult sliced = sliced_engine.diagnose_all(batch.ptrs);

    ASSERT_EQ(scalar.results.size(), count);
    ASSERT_EQ(sliced.results.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      expect_equivalent(truth[i], scalar.results[i], i);
      expect_equivalent(truth[i], sliced.results[i], i);
    }
    EXPECT_EQ(sliced.total_lookups, scalar.total_lookups);
    EXPECT_EQ(sliced.succeeded, scalar.succeeded);
  }
}

TEST(BatchDiagnoser, MixedLazyAndTableBatchScattersCorrectly) {
  // 64 tables interleaved with lazy oracles: the tables form one cohort,
  // the lazies stay scalar, and every result lands back at its original
  // index.
  test::Instance inst("hypercube 7");
  Diagnoser sequential(*inst.topo, inst.graph);
  const TableTestBatch tables =
      make_table_batch(inst, sequential.delta(), 64);
  const TestBatch lazies = make_batch(inst, sequential.delta(), 9);

  std::vector<const SyndromeOracle*> mixed;
  std::size_t t = 0, l = 0;
  while (t < tables.ptrs.size() || l < lazies.ptrs.size()) {
    if (t < tables.ptrs.size()) mixed.push_back(tables.ptrs[t++]);
    if (l < lazies.ptrs.size()) mixed.push_back(lazies.ptrs[l++]);
  }

  std::vector<DiagnosisResult> truth;
  for (const SyndromeOracle* oracle : mixed) {
    truth.push_back(sequential.diagnose(*oracle));
  }

  BatchOptions options;
  options.threads = 3;
  BatchDiagnoser engine(*inst.topo, inst.graph, options);
  const BatchResult result = engine.diagnose_all(mixed);
  ASSERT_EQ(result.results.size(), mixed.size());
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    expect_equivalent(truth[i], result.results[i], i);
    ASSERT_EQ(truth[i].final_members, result.results[i].final_members) << i;
  }
}

TEST(BatchDiagnoser, SingleItemCohortlessBatchStillWorks) {
  // One table oracle: far below cohort width, must take the scalar path
  // under bitsliced=true without stalling the pool.
  test::Instance inst("star 5");
  Diagnoser sequential(*inst.topo, inst.graph);
  const TableTestBatch batch = make_table_batch(inst, sequential.delta(), 1);
  BatchOptions options;
  options.threads = 4;
  BatchDiagnoser engine(*inst.topo, inst.graph, options);
  const BatchResult result = engine.diagnose_all(batch.ptrs);
  ASSERT_EQ(result.results.size(), 1u);
  expect_equivalent(sequential.diagnose(*batch.ptrs[0]), result.results[0], 0);
}

TEST(BatchDiagnoser, AdoptingPathRejectsConflictingDelta) {
  // A non-zero options.diagnoser.delta that disagrees with the adopted
  // partition's certified bound used to be silently ignored; it now throws
  // before any lane is built.
  test::Instance inst("hypercube 7");
  Diagnoser sequential(*inst.topo, inst.graph);  // certifies delta = 7
  BatchOptions conflicting;
  conflicting.diagnoser.delta = 3;
  EXPECT_THROW(BatchDiagnoser(inst.graph, sequential.partition(), conflicting),
               std::invalid_argument);
  BatchOptions agreeing;
  agreeing.diagnoser.delta = 7;
  EXPECT_NO_THROW(BatchDiagnoser(inst.graph, sequential.partition(), agreeing));
}

TEST(BatchDiagnoser, AdoptingPathRejectsMismatchedRule) {
  test::Instance inst("hypercube 7");
  Diagnoser sequential(*inst.topo, inst.graph);  // calibrated under kSpread
  BatchOptions mismatched;
  mismatched.diagnoser.rule = ParentRule::kLeastFirst;
  EXPECT_THROW(BatchDiagnoser(inst.graph, sequential.partition(), mismatched),
               std::invalid_argument);
}

TEST(BatchDiagnoser, NullOracleRejected) {
  test::Instance inst("hypercube 7");
  BatchDiagnoser engine(*inst.topo, inst.graph);
  EXPECT_THROW((void)engine.diagnose_all({nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
