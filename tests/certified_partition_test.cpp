// Runtime calibration of partition plans (DESIGN.md §4.1/§4.2).
#include <gtest/gtest.h>

#include "core/certified_partition.hpp"
#include "test_util.hpp"

namespace mmdiag {
namespace {

TEST(CertifiedPartition, HypercubeQ7Certifies) {
  test::Instance inst("hypercube 7");
  const auto cp = find_certified_partition(*inst.topo, inst.graph, 7,
                                           ParentRule::kSpread, true);
  EXPECT_GE(cp.plan->num_components(), 8u);
  EXPECT_TRUE(cp.fully_validated);
  EXPECT_EQ(cp.delta, 7u);
  // Every component individually certifies.
  for (std::uint32_t c = 0; c < cp.plan->num_components(); ++c) {
    EXPECT_TRUE(component_certifies(inst.graph, *cp.plan, c, 7,
                                    ParentRule::kSpread));
  }
}

// The ablation behind DESIGN.md §4.2: under the paper's least-first rule a
// fault-free Q_4 component yields exactly 8 contributors, which cannot
// exceed delta = 8, and no coarser plan leaves 9 components — so Q_8 is
// un-certifiable under the paper's rule but fine under the spread rule.
TEST(CertifiedPartition, SpreadRuleRescuesQ8) {
  test::Instance inst("hypercube 8");
  EXPECT_THROW((void)find_certified_partition(*inst.topo, inst.graph, 8,
                                        ParentRule::kLeastFirst, true),
               DiagnosisUnsupportedError);
  const auto cp = find_certified_partition(*inst.topo, inst.graph, 8,
                                           ParentRule::kSpread, true);
  EXPECT_GE(cp.plan->num_components(), 9u);
}

TEST(CertifiedPartition, FinerPlansPreferred) {
  test::Instance inst("hypercube 10");
  const auto tight = find_certified_partition(*inst.topo, inst.graph, 10,
                                              ParentRule::kSpread, true);
  const auto loose = find_certified_partition(*inst.topo, inst.graph, 5,
                                              ParentRule::kSpread, true);
  // A smaller fault bound admits components no larger than a bigger bound's.
  EXPECT_LE(loose.plan->component_size(), tight.plan->component_size());
}

TEST(CertifiedPartition, CliqueComponentsNeverCertify) {
  // S_{n,2} components are cliques K_{n-1}: a Set_Builder tree in a clique
  // has exactly one internal node, so certification is impossible
  // (DESIGN.md §4.3, correcting the paper's Theorem 5 for k = 2).
  test::Instance inst("nk_star 6 2");
  EXPECT_THROW((void)find_certified_partition(*inst.topo, inst.graph,
                                        inst.topo->default_fault_bound(),
                                        ParentRule::kSpread, true),
               DiagnosisUnsupportedError);
}

TEST(CertifiedPartition, ArrangementK2Unsupported) {
  test::Instance inst("arrangement 6 2");
  EXPECT_THROW((void)find_certified_partition(*inst.topo, inst.graph,
                                        inst.topo->default_fault_bound(),
                                        ParentRule::kSpread, true),
               DiagnosisUnsupportedError);
}

TEST(CertifiedPartition, ErrorMessageExplainsRejections) {
  test::Instance inst("nk_star 6 2");
  try {
    (void)find_certified_partition(*inst.topo, inst.graph, 5,
                                   ParentRule::kSpread, true);
    FAIL() << "expected DiagnosisUnsupportedError";
  } catch (const DiagnosisUnsupportedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("S(6,2)"), std::string::npos);
    EXPECT_NE(what.find("fault bound 5"), std::string::npos);
  }
}

TEST(CertifiedPartition, DeltaZeroTrivial) {
  test::Instance inst("hypercube 5");
  const auto cp = find_certified_partition(*inst.topo, inst.graph, 0,
                                           ParentRule::kSpread, true);
  EXPECT_GE(cp.plan->num_components(), 1u);
}

TEST(ComponentCertifies, MatchesFullSearchDecision) {
  test::Instance inst("star 5");
  const auto plans = inst.topo->partition_plans();
  ASSERT_EQ(plans.size(), 1u);
  const unsigned delta = inst.topo->default_fault_bound();
  bool all = true;
  for (std::uint32_t c = 0; c < plans[0]->num_components(); ++c) {
    all = all && component_certifies(inst.graph, *plans[0], c, delta,
                                     ParentRule::kSpread);
  }
  if (all) {
    EXPECT_NO_THROW((void)find_certified_partition(*inst.topo, inst.graph, delta,
                                             ParentRule::kSpread, true));
  } else {
    EXPECT_THROW((void)find_certified_partition(*inst.topo, inst.graph, delta,
                                          ParentRule::kSpread, true),
                 DiagnosisUnsupportedError);
  }
}

}  // namespace
}  // namespace mmdiag
