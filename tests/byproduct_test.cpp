// Secondary guarantees: determinism, the §6 healthy-spanning-tree
// by-product, look-up economy of the final-rule optimisation, and assorted
// edge cases not covered by the main suites.
#include <gtest/gtest.h>

#include "core/diagnoser.hpp"
#include "core/set_builder.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(Determinism, RepeatedDiagnosisIsBitIdentical) {
  test::Instance inst("crossed_cube 9");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(42);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 9, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 5);
  const auto first = diagnoser.diagnose(oracle);
  const auto second = diagnoser.diagnose(oracle);
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.lookups, second.lookups);
  EXPECT_EQ(first.probes, second.probes);
  EXPECT_EQ(first.final_members, second.final_members);
}

// §6 conclusions: "a by-product of our algorithm is ... a tree spanning the
// set of healthy nodes of the graph". Verify the final run's parent
// structure really is a spanning tree of V \ F when G - F is connected.
TEST(HealthySpanningTree, FinalRunSpansAllHealthyNodes) {
  test::Instance inst("hypercube 8");
  Rng rng(9);
  for (const auto rule : {ParentRule::kLeastFirst, ParentRule::kSpread}) {
    SetBuilder builder(inst.graph, rule);
    const FaultSet faults(256, inject_uniform(256, 8, rng));
    const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 2);
    Node seed = 0;
    while (faults.is_faulty(seed)) ++seed;
    const auto res = builder.run(oracle, seed, 8);
    // Exactly the healthy nodes (G - F stays connected for this instance:
    // verified implicitly by the count).
    EXPECT_EQ(res.members.size(), 256u - faults.size()) << to_string(rule);
    // Tree: n-1 parent edges, each a real edge, acyclic by layering
    // (parents precede children in discovery order — checked in
    // set_builder_test), so spanning-tree-ness follows from the count.
    std::size_t edges = 0;
    for (std::size_t i = 1; i < res.members.size(); ++i) {
      ASSERT_TRUE(inst.graph.has_edge(res.members[i], res.parent[i]));
      ++edges;
    }
    EXPECT_EQ(edges, res.members.size() - 1);
  }
}

TEST(FinalRuleEconomy, LeastFirstFinalRunUsesFewerLookups) {
  test::Instance inst("hypercube 10");
  DiagnoserOptions cheap;  // defaults: probes spread, final least-first
  DiagnoserOptions costly;
  costly.final_rule = ParentRule::kSpread;
  Diagnoser fast(*inst.topo, inst.graph, cheap);
  Diagnoser slow(*inst.topo, inst.graph, costly);
  Rng rng(12);
  const FaultSet faults(1024, inject_uniform(1024, 10, rng));
  const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const auto r_fast = fast.diagnose(o1);
  const auto r_slow = slow.diagnose(o2);
  ASSERT_TRUE(r_fast.success);
  ASSERT_TRUE(r_slow.success);
  EXPECT_EQ(r_fast.faults, r_slow.faults);
  EXPECT_LT(r_fast.lookups, r_slow.lookups / 2);  // ~Δ/2 economy
}

TEST(EdgeCases, SingleFaultAndDeltaOne) {
  test::Instance inst("hypercube 7");
  DiagnoserOptions options;
  options.delta = 1;
  Diagnoser diagnoser(*inst.topo, inst.graph, options);
  for (const Node f : {Node{0}, Node{1}, Node{127}}) {
    const FaultSet faults(128, {f});
    const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllZero, 0);
    const auto result = diagnoser.diagnose(oracle);
    ASSERT_TRUE(result.success) << f;
    EXPECT_EQ(result.faults, std::vector<Node>{f});
  }
  // Fault on the very first probed seed included above (node 0).
}

TEST(EdgeCases, FaultFreeSystemDiagnosesEmpty) {
  for (const char* spec : {"hypercube 7", "star 5", "kary_ncube 2 7"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    Diagnoser diagnoser(*inst.topo, inst.graph);
    const FaultSet none(inst.graph.num_nodes(), {});
    const LazyOracle oracle(inst.graph, none, FaultyBehavior::kRandom, 0);
    const auto result = diagnoser.diagnose(oracle);
    ASSERT_TRUE(result.success);
    EXPECT_TRUE(result.faults.empty());
    EXPECT_EQ(result.probes, 1u);  // first probe certifies immediately
    EXPECT_EQ(result.final_members, inst.graph.num_nodes());
  }
}

TEST(Options, ComponentZeroOnlyCalibrationWorksOnIsomorphicFamilies) {
  // validate_all_components=false is documented safe when components are
  // pairwise isomorphic (hypercubes qualify); the resulting diagnoser must
  // behave identically to the fully validated one.
  test::Instance inst("hypercube 9");
  DiagnoserOptions fast_opts;
  fast_opts.validate_all_components = false;
  Diagnoser fast(*inst.topo, inst.graph, fast_opts);
  Diagnoser full(*inst.topo, inst.graph);
  EXPECT_EQ(fast.partition().plan->component_size(),
            full.partition().plan->component_size());
  Rng rng(77);
  const FaultSet faults(512, inject_uniform(512, 9, rng));
  const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, 0);
  const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, 0);
  const auto r1 = fast.diagnose(o1);
  const auto r2 = full.diagnose(o2);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_EQ(r1.faults, r2.faults);
}

TEST(Oracles, RandomFaultyTesterAnswersAreStableAcrossRepeats) {
  // A faulty tester's answer is arbitrary but must be a fixed function of
  // (seed, tester, pair): a re-read mid-algorithm may not flip.
  test::Instance inst("hypercube 5");
  const FaultSet faults(32, {0});  // node 0 faulty, degree 5: 10 pairs
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 9);
  for (unsigned i = 0; i + 1 < 5; ++i) {
    for (unsigned j = i + 1; j < 5; ++j) {
      const bool first = oracle.test(0, i, j);
      for (int repeat = 0; repeat < 3; ++repeat) {
        EXPECT_EQ(oracle.test(0, i, j), first);
      }
    }
  }
}

TEST(PermCodecFuzz, LargeArrangementsRoundTrip) {
  Rng rng(77);
  for (const auto& [n, k] :
       {std::pair<unsigned, unsigned>{12, 5}, {16, 4}, {10, 7}, {20, 3}}) {
    const PermCodec codec(n, k);
    std::uint8_t a[64];
    for (int trial = 0; trial < 500; ++trial) {
      const std::uint64_t r = rng.below(codec.count());
      codec.unrank(r, a);
      ASSERT_EQ(codec.rank(a), r) << n << "," << k;
    }
  }
}

TEST(Memory, SyndromeAndGraphAccountingPlausible) {
  test::Instance inst("hypercube 10");  // 1024 nodes, degree 10
  const Syndrome s(inst.graph);
  // 1024 * C(10,2) = 46080 bits ≈ 5.6 KiB of payload.
  EXPECT_EQ(s.total_tests(), 46080u);
  EXPECT_GE(s.memory_bytes(), 46080u / 8);
  EXPECT_LE(s.memory_bytes(), 64 * 1024u);
  EXPECT_GE(inst.graph.memory_bytes(),
            1024u * 10 * sizeof(Node));  // adjacency payload
}

TEST(ProbeAccounting, ProbeAndFinalLookupsSeparable) {
  // Total look-ups must decompose as (certify probes) + (final run): check
  // by re-running the final phase alone via SetBuilder.
  test::Instance inst("hypercube 9");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(15);
  const FaultSet faults(512, inject_uniform(512, 9, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 8);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);

  const PartitionPlan& plan = *diagnoser.partition().plan;
  SetBuilder final_builder(inst.graph, ParentRule::kLeastFirst);
  oracle.reset_lookups();
  (void)final_builder.run(oracle, plan.seed_of(result.certified_component), 9);
  const auto final_lookups = oracle.lookups();
  EXPECT_LT(final_lookups, result.lookups);
  EXPECT_GE(result.lookups, final_lookups);
}

}  // namespace
}  // namespace mmdiag
