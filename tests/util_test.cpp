#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bitvec.hpp"
#include "util/mixed_radix.hpp"
#include "util/perm.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mmdiag {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2, 3), mix64(3, 2, 1));
}

TEST(BitVec, SetGetReset) {
  BitVec b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.get(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(64));
  EXPECT_TRUE(b.get(129));
  EXPECT_FALSE(b.get(63));
  b.reset(64);
  EXPECT_FALSE(b.get(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(BitVec, CountMasksTailBits) {
  BitVec b(65, true);
  EXPECT_EQ(b.count(), 65u);
}

TEST(BitVec, AssignAndClearAll) {
  BitVec b(10);
  b.assign(3, true);
  b.assign(3, false);
  b.assign(7, true);
  EXPECT_EQ(b.count(), 1u);
  b.clear_all();
  EXPECT_EQ(b.count(), 0u);
}

// Regressions for the shift-by-width edge cases in extract(): len == 64
// (mask shift), word-aligned starts (off == 0 guards the second shift),
// and straddles that pull bits from two words.
TEST(BitVec, ExtractFullWordAtStartZero) {
  BitVec b(128);
  for (std::uint64_t i = 0; i < 64; i += 3) b.set(i);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (b.get(i)) expect |= std::uint64_t{1} << i;
  }
  EXPECT_EQ(b.extract(0, 64), expect);
}

TEST(BitVec, ExtractStraddleAtStart63) {
  BitVec b(192);
  b.set(63);
  b.set(64);
  b.set(126);
  // start 63, len 64: bit 0 from word 0's top bit, bits 1..63 from word 1.
  const std::uint64_t got = b.extract(63, 64);
  EXPECT_EQ(got & 1u, 1u);                          // bit 63 -> slot 0
  EXPECT_EQ((got >> 1) & 1u, 1u);                   // bit 64 -> slot 1
  EXPECT_EQ((got >> 63) & 1u, 1u);                  // bit 126 -> slot 63
  EXPECT_EQ(got, (std::uint64_t{1} << 63) | 0b11u);
}

TEST(BitVec, ExtractWordAlignedStart64) {
  BitVec b(192);
  b.set(64);
  b.set(127);
  // start 64 is word-aligned: off == 0 must not touch word 2.
  b.set(128);
  EXPECT_EQ(b.extract(64, 64), (std::uint64_t{1} << 63) | 1u);
}

TEST(BitVec, ExtractLastWordOfExactMultiple) {
  // start + len == size() with size a word multiple: the w + 1 load must
  // not run off the end of words_.
  BitVec b(128);
  b.set(127);
  EXPECT_EQ(b.extract(64, 64), std::uint64_t{1} << 63);
  EXPECT_EQ(b.extract(127, 1), 1u);
}

TEST(BitVec, ExtractMatchesGetOnRandomStraddles) {
  Rng rng(0xE17);
  BitVec b(400);
  for (std::uint64_t i = 0; i < 400; ++i) {
    if (rng.below(2) == 1) b.set(i);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const unsigned len = 1 + static_cast<unsigned>(rng.below(64));
    const std::uint64_t start = rng.below(400 - len + 1);
    const std::uint64_t got = b.extract(start, len);
    for (unsigned i = 0; i < len; ++i) {
      ASSERT_EQ((got >> i) & 1u, b.get(start + i) ? 1u : 0u)
          << "start=" << start << " len=" << len << " i=" << i;
    }
    if (len < 64) {
      ASSERT_EQ(got >> len, 0u) << "stray high bits past len=" << len;
    }
  }
}

TEST(Transpose64, MatchesNaiveOnRandomMatrices) {
  Rng rng(0x7A5);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t a[64], orig[64];
    for (auto& w : a) w = rng();
    for (int r = 0; r < 64; ++r) orig[r] = a[r];
    transpose64(a);
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) {
        ASSERT_EQ((a[r] >> c) & 1u, (orig[c] >> r) & 1u)
            << "r=" << r << " c=" << c;
      }
    }
  }
}

TEST(Transpose64, Involution) {
  Rng rng(0x7A6);
  std::uint64_t a[64], orig[64];
  for (auto& w : a) w = rng();
  for (int r = 0; r < 64; ++r) orig[r] = a[r];
  transpose64(a);
  transpose64(a);
  for (int r = 0; r < 64; ++r) EXPECT_EQ(a[r], orig[r]);
}

TEST(StampSet, InsertContainsClear) {
  StampSet s(8);
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  s.clear();
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.insert(3));
}

TEST(StampSet, ManyEpochs) {
  StampSet s(4);
  for (int epoch = 0; epoch < 1000; ++epoch) {
    EXPECT_TRUE(s.insert(1));
    EXPECT_TRUE(s.contains(1));
    s.clear();
  }
  EXPECT_FALSE(s.contains(1));
}

TEST(Factorial, KnownValues) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(1), 1u);
  EXPECT_EQ(factorial(5), 120u);
  EXPECT_EQ(factorial(12), 479001600u);
}

TEST(FallingFactorial, KnownValues) {
  EXPECT_EQ(falling_factorial(7, 3), 7u * 6 * 5);
  EXPECT_EQ(falling_factorial(5, 0), 1u);
  EXPECT_EQ(falling_factorial(5, 5), 120u);
  EXPECT_THROW((void)falling_factorial(3, 4), std::invalid_argument);
  EXPECT_THROW((void)falling_factorial(30, 30), std::overflow_error);
}

TEST(PermCodec, RoundTripFullPermutations) {
  PermCodec codec(5, 5);
  EXPECT_EQ(codec.count(), 120u);
  std::set<std::vector<std::uint8_t>> seen;
  std::uint8_t a[8];
  for (std::uint64_t r = 0; r < codec.count(); ++r) {
    codec.unrank(r, a);
    seen.insert(std::vector<std::uint8_t>(a, a + 5));
    EXPECT_EQ(codec.rank(a), r);
  }
  EXPECT_EQ(seen.size(), 120u);  // bijective
}

TEST(PermCodec, RoundTripArrangements) {
  PermCodec codec(7, 3);
  EXPECT_EQ(codec.count(), 7u * 6 * 5);
  std::uint8_t a[8];
  for (std::uint64_t r = 0; r < codec.count(); ++r) {
    codec.unrank(r, a);
    // symbols distinct, in range
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(a[i], 1);
      EXPECT_LE(a[i], 7);
      for (int j = i + 1; j < 3; ++j) EXPECT_NE(a[i], a[j]);
    }
    EXPECT_EQ(codec.rank(a), r);
  }
}

TEST(PermCodec, RankZeroIsIdentityPrefix) {
  PermCodec codec(6, 4);
  std::uint8_t a[8];
  codec.unrank(0, a);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 2);
  EXPECT_EQ(a[2], 3);
  EXPECT_EQ(a[3], 4);
}

TEST(PermCodec, RejectsBadParams) {
  EXPECT_THROW((void)PermCodec(3, 0), std::invalid_argument);
  EXPECT_THROW((void)PermCodec(3, 4), std::invalid_argument);
}

TEST(TupleCodec, RoundTrip) {
  TupleCodec codec(3, 4);
  EXPECT_EQ(codec.count, 64u);
  std::uint8_t d[8];
  for (std::uint64_t id = 0; id < codec.count; ++id) {
    codec.unrank(id, d);
    for (int i = 0; i < 3; ++i) EXPECT_LT(d[i], 4);
    EXPECT_EQ(codec.rank(d), id);
  }
}

TEST(TupleCodec, WithDigit) {
  TupleCodec codec(3, 5);
  const std::uint64_t id = codec.rank(std::array<std::uint8_t, 3>{2, 3, 4}.data());
  std::uint8_t d[3];
  codec.unrank(codec.with_digit(id, 1, 0), d);
  EXPECT_EQ(d[0], 2);
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[2], 4);
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"n", "time"});
  t.add_row({"7", "1.5"});
  t.add_row({"12", "2.25"});
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("| 12 |"), std::string::npos);
  EXPECT_EQ(csv.str(), "n,time\n7,1.5\n12,2.25\n");
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW((void)t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormat) {
  EXPECT_EQ(Table::num(std::uint64_t{12345}), "12345");
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace mmdiag
