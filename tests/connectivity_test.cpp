#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/connectivity.hpp"

namespace mmdiag {
namespace {

Graph complete_graph(std::size_t n) {
  std::vector<std::pair<Node, Node>> edges;
  for (Node i = 0; i < n; ++i) {
    for (Node j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return build_graph_from_edges(n, edges);
}

Graph cycle_graph(std::size_t n) {
  std::vector<std::pair<Node, Node>> edges;
  for (Node i = 0; i < n; ++i) edges.emplace_back(i, static_cast<Node>((i + 1) % n));
  return build_graph_from_edges(n, edges);
}

Graph petersen() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  std::vector<std::pair<Node, Node>> edges;
  for (Node i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);
    edges.emplace_back(i + 5, ((i + 2) % 5) + 5);
    edges.emplace_back(i, i + 5);
  }
  return build_graph_from_edges(10, edges);
}

TEST(Connectivity, CompleteGraph) {
  EXPECT_EQ(vertex_connectivity(complete_graph(5)), 4u);
}

TEST(Connectivity, CycleIsTwoConnected) {
  EXPECT_EQ(vertex_connectivity(cycle_graph(7)), 2u);
}

TEST(Connectivity, PathIsOneConnected) {
  EXPECT_EQ(vertex_connectivity(build_graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}})),
            1u);
}

TEST(Connectivity, PetersenIsThreeConnected) {
  EXPECT_EQ(vertex_connectivity(petersen()), 3u);
}

TEST(Connectivity, DisconnectedIsZero) {
  EXPECT_EQ(vertex_connectivity(build_graph_from_edges(4, {{0, 1}, {2, 3}})), 0u);
}

TEST(Connectivity, LocalConnectivityMengerOnCycle) {
  const Graph g = cycle_graph(8);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 4), 2u);
  EXPECT_THROW((void)local_vertex_connectivity(g, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)local_vertex_connectivity(g, 0, 0), std::invalid_argument);
}

TEST(Connectivity, MinVertexCutSeparates) {
  // Two triangles joined through a single articulation vertex 2.
  const Graph g = build_graph_from_edges(
      5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}});
  const auto cut = min_vertex_cut(g, 0, 4);
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0], 2u);
  EXPECT_TRUE(is_articulation_set(g, cut));
  EXPECT_FALSE(is_articulation_set(g, {0}));
}

TEST(Connectivity, MinCutSizeMatchesLocalConnectivity) {
  const Graph g = petersen();
  const auto cut = min_vertex_cut(g, 0, 7);  // non-adjacent pair
  EXPECT_EQ(cut.size(), local_vertex_connectivity(g, 0, 7));
  EXPECT_TRUE(is_articulation_set(g, cut));
}

TEST(Connectivity, ArticulationSetRejectsFullCover) {
  const Graph g = cycle_graph(3);
  EXPECT_THROW((void)is_articulation_set(g, {0, 1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
