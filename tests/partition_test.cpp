// Partition plans: components must partition V, contain their seeds, and
// induce connected subgraphs of the stated size.
#include <gtest/gtest.h>

#include <map>

#include "graph/traversal.hpp"
#include "test_util.hpp"

namespace mmdiag {
namespace {

class PartitionCoverage : public ::testing::TestWithParam<std::string> {};

TEST_P(PartitionCoverage, PlansPartitionTheNodeSet) {
  test::Instance inst(GetParam());
  const auto plans = inst.topo->partition_plans();
  ASSERT_FALSE(plans.empty()) << GetParam();
  for (const auto& plan : plans) {
    SCOPED_TRACE(plan->description());
    std::map<std::uint32_t, std::vector<Node>> members;
    for (Node v = 0; v < inst.graph.num_nodes(); ++v) {
      const auto c = plan->component_of(v);
      ASSERT_LT(c, plan->num_components());
      members[c].push_back(v);
    }
    // Every component nonempty, of the advertised uniform size.
    EXPECT_EQ(members.size(), plan->num_components());
    for (const auto& [c, nodes] : members) {
      EXPECT_EQ(nodes.size(), plan->component_size());
      // Seed lies in its component.
      EXPECT_EQ(plan->component_of(plan->seed_of(c)), c);
    }
  }
}

TEST_P(PartitionCoverage, FinestPlanComponentsAreConnected) {
  test::Instance inst(GetParam());
  const auto plans = inst.topo->partition_plans();
  ASSERT_FALSE(plans.empty());
  // Check connectivity of the *coarsest* plan (largest components) — the
  // one the certified search falls back to; finer plans are checked by the
  // calibration tests.
  const auto& plan = plans.back();
  std::map<std::uint32_t, std::vector<Node>> members;
  for (Node v = 0; v < inst.graph.num_nodes(); ++v) {
    members[plan->component_of(v)].push_back(v);
  }
  for (const auto& [c, nodes] : members) {
    EXPECT_TRUE(induced_subgraph_connected(inst.graph, nodes))
        << plan->description() << " component " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PartitionCoverage,
                         ::testing::Values("hypercube 6", "crossed_cube 6",
                                           "twisted_cube 5",
                                           "folded_hypercube 5",
                                           "enhanced_hypercube 6 3",
                                           "augmented_cube 5", "shuffle_cube 6",
                                           "twisted_n_cube 6", "kary_ncube 3 3",
                                           "augmented_kary_ncube 2 5", "star 5",
                                           "nk_star 6 3", "pancake 5",
                                           "arrangement 5 3"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

TEST(PrefixBitsPlan, ComponentArithmetic) {
  const PrefixBitsPlan plan(6, 4);  // fix top 2 bits
  EXPECT_EQ(plan.num_components(), 4u);
  EXPECT_EQ(plan.component_size(), 16u);
  EXPECT_EQ(plan.component_of(0x3F), 3u);
  EXPECT_EQ(plan.seed_of(2), 0x20u);
  EXPECT_THROW((void)PrefixBitsPlan(4, 0), std::invalid_argument);
  EXPECT_THROW((void)PrefixBitsPlan(4, 5), std::invalid_argument);
}

TEST(TuplePrefixPlan, ComponentArithmetic) {
  const TuplePrefixPlan plan(3, 5, 2);  // fix top coordinate of Z_5^3
  EXPECT_EQ(plan.num_components(), 5u);
  EXPECT_EQ(plan.component_size(), 25u);
  EXPECT_EQ(plan.component_of(101), 4u);
  EXPECT_EQ(plan.seed_of(3), 75u);
}

TEST(FixLastSymbolPlan, SeedsAndComponents) {
  const FixLastSymbolPlan plan(5, 3);  // S(5,3)-style arrangements
  EXPECT_EQ(plan.num_components(), 5u);
  EXPECT_EQ(plan.component_size(), 60u / 5);
  const PermCodec codec(5, 3);
  for (std::size_t c = 0; c < 5; ++c) {
    std::uint8_t a[8];
    codec.unrank(plan.seed_of(c), a);
    EXPECT_EQ(a[2], c + 1);  // last position fixed to symbol c+1
    EXPECT_EQ(plan.component_of(plan.seed_of(c)), c);
  }
}

}  // namespace
}  // namespace mmdiag
