// Extended-star constructions (Fig. 2 structures for the Chiang-Tan
// baseline): validity at every root, and the generic greedy fallback.
#include <gtest/gtest.h>

#include "baselines/extended_star.hpp"
#include "test_util.hpp"
#include "topology/hypercube.hpp"
#include "topology/star_graph.hpp"

namespace mmdiag {
namespace {

TEST(ExtendedStarHypercube, ValidAtEveryRoot) {
  for (unsigned n = 5; n <= 8; ++n) {
    const Hypercube topo(n);
    const Graph g = topo.build_graph();
    for (Node x = 0; x < g.num_nodes(); ++x) {
      const auto es = extended_star_hypercube(topo, x);
      ASSERT_EQ(es.branches.size(), n);
      ASSERT_TRUE(extended_star_valid(g, es)) << "n=" << n << " x=" << x;
    }
  }
}

TEST(ExtendedStarHypercube, RejectsSmallDimensions) {
  const Hypercube q4(4);
  EXPECT_THROW((void)extended_star_hypercube(q4, 0), std::invalid_argument);
}

TEST(ExtendedStarStarGraph, ValidAtEveryRoot) {
  for (unsigned n = 5; n <= 7; ++n) {
    const StarGraph topo(n);
    const Graph g = topo.build_graph();
    for (Node x = 0; x < g.num_nodes(); ++x) {
      const auto es = extended_star_star_graph(topo, x);
      ASSERT_EQ(es.branches.size(), n - 1);
      ASSERT_TRUE(extended_star_valid(g, es)) << "n=" << n << " x=" << x;
    }
  }
}

TEST(ExtendedStarValid, DetectsBrokenStructures) {
  test::Instance inst("hypercube 5");
  const Hypercube topo(5);
  auto es = extended_star_hypercube(topo, 0);
  // Duplicate a node across branches.
  es.branches[1][3] = es.branches[0][3];
  EXPECT_FALSE(extended_star_valid(inst.graph, es));
  // Break adjacency.
  auto es2 = extended_star_hypercube(topo, 0);
  es2.branches[0][2] = es2.branches[0][0];
  EXPECT_FALSE(extended_star_valid(inst.graph, es2));
}

TEST(ExtendedStarGreedy, WorksOnCrossedCube) {
  test::Instance inst("crossed_cube 6");
  for (Node x = 0; x < inst.graph.num_nodes(); x += 7) {
    const auto es = extended_star_greedy(inst.graph, x, 6);
    ASSERT_TRUE(es.has_value()) << "x=" << x;
    EXPECT_TRUE(extended_star_valid(inst.graph, *es));
  }
}

TEST(ExtendedStarGreedy, FailsGracefullyOnTinyGraphs) {
  test::Instance inst("hypercube 2");  // only 4 nodes: no depth-4 paths
  EXPECT_EQ(extended_star_greedy(inst.graph, 0, 2), std::nullopt);
}

}  // namespace
}  // namespace mmdiag
