// The headline property sweep: for EVERY supported family (Theorems 2-7),
// every faulty-tester behaviour and several fault counts and injection
// patterns, the driver returns exactly the injected fault set.
//
// Instance sizes are the smallest per family whose partitions certify (see
// DESIGN.md §4 and the support matrix in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

class DiagnosisSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DiagnosisSweep, ExactRecoveryAcrossBehaviorsAndFaultCounts) {
  test::Instance inst(GetParam());
  const unsigned delta = inst.topo->default_fault_bound();
  ASSERT_GT(delta, 0u) << GetParam();
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(0xC0FFEE);

  const unsigned counts[] = {0, 1, delta / 2, delta};
  for (const unsigned count : counts) {
    for (const auto behavior : kAllFaultyBehaviors) {
      const FaultSet faults(inst.graph.num_nodes(),
                            inject_uniform(inst.graph.num_nodes(), count, rng));
      const LazyOracle oracle(inst.graph, faults, behavior,
                              count * 131 + static_cast<unsigned>(behavior));
      const auto result = diagnoser.diagnose(oracle);
      ASSERT_TRUE(result.success)
          << GetParam() << ": " << count << " faults, " << to_string(behavior)
          << ": " << result.failure_reason;
      EXPECT_EQ(result.faults, faults.nodes())
          << GetParam() << ": " << count << " faults, " << to_string(behavior);
      EXPECT_LE(result.probes, std::size_t{delta} + 1);
    }
  }
}

TEST_P(DiagnosisSweep, SurroundPatternRecovered) {
  test::Instance inst(GetParam());
  const unsigned delta = inst.topo->default_fault_bound();
  if (inst.graph.max_degree() > delta) {
    GTEST_SKIP() << "surround set larger than fault bound";
  }
  Diagnoser diagnoser(*inst.topo, inst.graph);
  const Node centre = static_cast<Node>(inst.graph.num_nodes() / 2);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_surround(inst.graph, centre));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllZero, 5);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.faults, faults.nodes());
}

TEST_P(DiagnosisSweep, ClusteredFaultsRecovered) {
  test::Instance inst(GetParam());
  const unsigned delta = inst.topo->default_fault_bound();
  Diagnoser diagnoser(*inst.topo, inst.graph);
  const Node centre = static_cast<Node>(inst.graph.num_nodes() / 3);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_clustered(inst.graph, centre, delta));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAntiDiagnostic, 7);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.faults, faults.nodes());
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedFamilies, DiagnosisSweep,
    ::testing::Values(
        // Theorem 2
        "hypercube 7", "hypercube 8", "hypercube 10",
        // Theorem 3
        "crossed_cube 7", "crossed_cube 9", "twisted_cube 7", "twisted_cube 9",
        "folded_hypercube 8", "enhanced_hypercube 8 6",
        "enhanced_hypercube 9 3", "augmented_cube 11", "shuffle_cube 10",
        "twisted_n_cube 9",
        // Theorem 4
        "kary_ncube 2 7", "kary_ncube 2 8", "kary_ncube 3 9",
        "kary_ncube 4 7", "augmented_kary_ncube 2 9",
        // Theorem 5 (includes stars as S_{n,n-1})
        "nk_star 6 3", "nk_star 7 3", "nk_star 7 5", "star 5", "star 6",
        "star 7",
        // Theorem 6
        "pancake 5", "pancake 6", "pancake 7",
        // Theorem 7
        "arrangement 6 3", "arrangement 7 3", "arrangement 7 4"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mmdiag
