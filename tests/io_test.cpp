// Syndrome file format: round trips, malformed-input rejection, and
// diagnosis through the serialisation boundary.
#include <gtest/gtest.h>

#include <sstream>

#include "core/diagnoser.hpp"
#include "io/syndrome_io.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(SyndromeIo, RoundTripPreservesEveryBit) {
  for (const char* spec : {"hypercube 5", "star 4", "kary_ncube 2 5"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    Rng rng(1);
    const FaultSet faults(inst.graph.num_nodes(),
                          inject_uniform(inst.graph.num_nodes(), 3, rng));
    const Syndrome original =
        generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 9);
    std::stringstream buffer;
    write_syndrome(buffer, spec, inst.graph, original);
    const LoadedSyndrome loaded = read_syndrome(buffer);
    EXPECT_EQ(loaded.spec, spec);
    ASSERT_EQ(loaded.graph.num_nodes(), inst.graph.num_nodes());
    for (Node u = 0; u < inst.graph.num_nodes(); ++u) {
      const unsigned d = inst.graph.degree(u);
      for (unsigned i = 0; i + 1 < d; ++i) {
        for (unsigned j = i + 1; j < d; ++j) {
          ASSERT_EQ(loaded.syndrome.test(u, i, j), original.test(u, i, j))
              << u << " " << i << " " << j;
        }
      }
    }
  }
}

TEST(SyndromeIo, DiagnosisThroughTheFileBoundary) {
  test::Instance inst("hypercube 7");
  Rng rng(2);
  const FaultSet faults(128, inject_uniform(128, 7, rng));
  const Syndrome syndrome =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kAntiDiagnostic, 4);
  std::stringstream buffer;
  write_syndrome(buffer, "hypercube 7", inst.graph, syndrome);

  LoadedSyndrome loaded = read_syndrome(buffer);
  Diagnoser diagnoser(*loaded.topology, loaded.graph);
  const TableOracle oracle(loaded.graph, loaded.syndrome);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.faults, faults.nodes());
}

TEST(SyndromeIo, CommentsAndBlankLinesTolerated) {
  test::Instance inst("hypercube 3");
  const Syndrome s(inst.graph);
  std::stringstream buffer;
  write_syndrome(buffer, "hypercube 3", inst.graph, s);
  std::string text = buffer.str();
  text.insert(text.find("node 1"), "# a comment\n\n");
  std::stringstream patched(text);
  EXPECT_NO_THROW((void)read_syndrome(patched));
}

TEST(SyndromeIo, MalformedInputsRejectedWithLineNumbers) {
  const auto expect_fail = [](const std::string& text,
                              const std::string& fragment) {
    std::stringstream in(text);
    try {
      (void)read_syndrome(in);
      FAIL() << "expected failure for: " << fragment;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_fail("garbage\n", "expected header");
  expect_fail("mmdiag-syndrome v1\nnope\n", "expected 'topology");
  expect_fail("mmdiag-syndrome v1\ntopology bogus 3\n", "bad topology spec");
  // Valid header, bad node records.
  test::Instance inst("hypercube 2");
  const Syndrome s(inst.graph);
  std::stringstream good;
  write_syndrome(good, "hypercube 2", inst.graph, s);
  const std::string base = good.str();

  std::string missing = base;
  missing.erase(missing.find("node 3"), missing.find("end") - missing.find("node 3"));
  expect_fail(missing, "missing");

  std::string dup = base;
  dup.replace(dup.find("node 1"), 6, "node 0");
  expect_fail(dup, "duplicate");

  std::string badbits = base;
  badbits.replace(badbits.find("node 0 ") + 7, 1, "X");
  expect_fail(badbits, "bits");

  std::string no_end = base.substr(0, base.find("end"));
  expect_fail(no_end, "end");
}

TEST(NodeListIo, RoundTrip) {
  std::stringstream buffer;
  write_node_list(buffer, {3, 17, 42});
  EXPECT_EQ(read_node_list(buffer), (std::vector<Node>{3, 17, 42}));
  std::stringstream empty("");
  EXPECT_TRUE(read_node_list(empty).empty());
}

TEST(NodeListIo, EmptyListRoundTrip) {
  std::stringstream buffer;
  write_node_list(buffer, {});
  EXPECT_EQ(buffer.str(), "\n");
  EXPECT_TRUE(read_node_list(buffer).empty());
}

TEST(NodeListIo, CommentsAndMultipleLinesTolerated) {
  std::stringstream in("# fault ids\n3 17\n\n42\n");
  EXPECT_EQ(read_node_list(in), (std::vector<Node>{3, 17, 42}));
}

TEST(NodeListIo, GarbageTokensRejectedWithLineNumbers) {
  // Regression: `is >> v` used to stop silently at the first non-numeric
  // token, so "3 17 xyz" read as {3, 17} instead of failing.
  const auto expect_fail = [](const std::string& text,
                              const std::string& fragment) {
    std::stringstream in(text);
    try {
      (void)read_node_list(in);
      FAIL() << "expected failure for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_fail("3 17 xyz\n", "line 1: expected a node id, got 'xyz'");
  expect_fail("3\n17x\n", "line 2");
  expect_fail("-3\n", "'-3'");
  expect_fail("1e3\n", "'1e3'");
  expect_fail("3 0x17\n", "'0x17'");
  expect_fail("99999999999\n", "out of range");  // exceeds Node (u32)
}

}  // namespace
}  // namespace mmdiag
