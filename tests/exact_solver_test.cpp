// The DPLL exact solver: agreement with brute force, exact recovery on
// instances brute force cannot touch, and empirical diagnosability
// validation of the published δ values.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "baselines/exact_solver.hpp"
#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(ExactSolver, AgreesWithBruteForceOnTinyGraphs) {
  for (const char* spec : {"hypercube 4", "star 4", "nk_star 5 2"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const unsigned delta = inst.topo->info().diagnosability;
    Rng rng(3);
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t count = rng.below(delta + 1);
      const FaultSet faults(inst.graph.num_nodes(),
                            inject_uniform(inst.graph.num_nodes(), count, rng));
      const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom,
                              trial);
      const auto brute = brute_force_consistent_sets(inst.graph, oracle, delta);
      ExactSolver solver(inst.graph, oracle, delta);
      auto fast = solver.solve(64);
      auto slow = brute;
      std::sort(fast.begin(), fast.end());
      std::sort(slow.begin(), slow.end());
      EXPECT_EQ(fast, slow);
    }
  }
}

TEST(ExactSolver, ExactRecoveryOnMidSizeGraphs) {
  // Far beyond brute force: Q7 with delta = 7 would need C(128,7) ~ 1e10
  // candidate checks; the solver's propagation collapses it instantly.
  for (const char* spec : {"hypercube 6", "hypercube 7", "crossed_cube 6",
                           "star 5", "pancake 5"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const unsigned delta = inst.topo->info().diagnosability;
    ASSERT_GT(delta, 0u);
    Rng rng(5);
    for (const auto behavior : kAllFaultyBehaviors) {
      const FaultSet faults(inst.graph.num_nodes(),
                            inject_uniform(inst.graph.num_nodes(), delta, rng));
      const LazyOracle oracle(inst.graph, faults, behavior, 11);
      ExactSolver solver(inst.graph, oracle, delta);
      const auto result = solver.diagnose();
      ASSERT_TRUE(result.success)
          << to_string(behavior) << ": " << result.failure_reason;
      EXPECT_EQ(result.faults, faults.nodes());
    }
  }
}

// Empirical validation of published diagnosability: on a δ-diagnosable
// graph, EVERY syndrome from |F| <= δ faults has a unique consistent
// candidate. Brute force can only check this for tiny graphs; the solver
// verifies it for the sizes the paper's theorems actually start at.
TEST(ExactSolver, EmpiricalDiagnosabilityAtTheoremScale) {
  struct Case {
    const char* spec;
    unsigned delta;  // published diagnosability
  };
  for (const Case& c : {Case{"hypercube 5", 5}, Case{"crossed_cube 5", 5},
                        Case{"twisted_cube 5", 5}, Case{"folded_hypercube 4", 5},
                        Case{"star 5", 4}, Case{"pancake 5", 4},
                        Case{"kary_ncube 2 6", 4},
                        Case{"arrangement 5 2", 6}}) {
    SCOPED_TRACE(c.spec);
    test::Instance inst(c.spec);
    ASSERT_EQ(inst.topo->info().diagnosability, c.delta);
    Rng rng(7);
    for (int trial = 0; trial < 3; ++trial) {
      const FaultSet faults(
          inst.graph.num_nodes(),
          inject_uniform(inst.graph.num_nodes(), c.delta, rng));
      const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom,
                              trial * 3);
      ExactSolver solver(inst.graph, oracle, c.delta);
      const auto solutions = solver.solve(4);
      ASSERT_EQ(solutions.size(), 1u) << "trial " << trial;
      EXPECT_EQ(solutions.front(), faults.nodes());
    }
  }
}

TEST(ExactSolver, DetectsAmbiguityBeyondDiagnosability) {
  // N(u) vs N(u) ∪ {u} with the mimicking behaviour (cf. baselines_test).
  test::Instance inst("hypercube 5");
  auto faults_vec = inject_surround(inst.graph, 0);
  faults_vec.push_back(0);
  const FaultSet faults(32, faults_vec);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllOne, 0);
  ExactSolver solver(inst.graph, oracle, 6);  // allow delta+1
  const auto solutions = solver.solve(8);
  EXPECT_GE(solutions.size(), 2u);
  const auto result = solver.diagnose();
  EXPECT_FALSE(result.success);
}

TEST(ExactSolver, AgreesWithDriverOnEveryBehavior) {
  test::Instance inst("hypercube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(13);
  for (const auto behavior : kAllFaultyBehaviors) {
    const FaultSet faults(128, inject_uniform(128, 7, rng));
    const LazyOracle o1(inst.graph, faults, behavior, 2);
    const LazyOracle o2(inst.graph, faults, behavior, 2);
    ExactSolver solver(inst.graph, o1, 7);
    const auto exact = solver.diagnose();
    const auto driver = diagnoser.diagnose(o2);
    ASSERT_TRUE(exact.success);
    ASSERT_TRUE(driver.success);
    EXPECT_EQ(exact.faults, driver.faults);
  }
}

TEST(ExactSolver, NoSolutionWhenFaultsExceedDeltaEverywhere) {
  // 12 faults, delta = 4: no candidate of size <= 4 can explain a random
  // syndrome (with overwhelming probability for this seed).
  test::Instance inst("hypercube 6");
  Rng rng(17);
  const FaultSet faults(64, inject_uniform(64, 12, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 5);
  ExactSolver solver(inst.graph, oracle, 4);
  const auto result = solver.diagnose();
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure_reason.find("no fault set"), std::string::npos);
}

TEST(ExactSolver, FaultFreeSyndromeYieldsEmptySet) {
  test::Instance inst("hypercube 6");
  const FaultSet none(64, {});
  const LazyOracle oracle(inst.graph, none, FaultyBehavior::kRandom, 0);
  ExactSolver solver(inst.graph, oracle, 6);
  const auto result = solver.diagnose();
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(result.faults.empty());
}

}  // namespace
}  // namespace mmdiag
