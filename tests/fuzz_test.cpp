// The differential fuzz subsystem: catalog health, case-stream determinism
// and coverage, clean differential runs, the sabotage-driven
// find -> minimize -> repro pipeline, repro file IO, and replay of every
// checked-in corpus file (each of which pins a bug or regime the fuzzer
// once surfaced).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "fuzz/differ.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/fuzzer.hpp"

namespace mmdiag {
namespace {

bool equal_cases(const FuzzCase& a, const FuzzCase& b) {
  return a.spec == b.spec && a.delta == b.delta && a.pattern == b.pattern &&
         a.inject_seed == b.inject_seed && a.behavior == b.behavior &&
         a.behavior_seed == b.behavior_seed && a.rule == b.rule &&
         a.faults == b.faults;
}

TEST(FuzzCatalog, EveryEntryCertifiesUnderBothRulesAndLaddersAscend) {
  const auto& catalog = fuzz_catalog();
  ASSERT_GE(catalog.size(), 6u);  // the acceptance floor on family diversity
  FuzzContext ctx;
  for (const FuzzFamilyLadder& ladder : catalog) {
    SCOPED_TRACE(ladder.family);
    ASSERT_FALSE(ladder.sizes.empty());
    std::size_t previous_nodes = 0;
    for (const FuzzCatalogEntry& entry : ladder.sizes) {
      SCOPED_TRACE(entry.spec);
      ASSERT_GT(entry.delta, 0u);
      // setup() throws if kSpread cannot certify; the least-first config
      // must also be live or the differ would silently skip a rule.
      const FuzzSetup& s = ctx.setup(entry.spec, entry.delta);
      EXPECT_NE(s.least_first, nullptr);
      EXPECT_EQ(s.spread->rule(), ParentRule::kSpread);
      EXPECT_EQ(s.spread->delta(), entry.delta);
      // Theorem 1 needs kappa >= delta for N(U_r) = F.
      EXPECT_LE(entry.delta, s.spread->topology->info().connectivity);
      EXPECT_GT(s.graph().num_nodes(), previous_nodes)
          << "ladder must ascend so the minimizer can walk down";
      previous_nodes = s.graph().num_nodes();
    }
  }
}

TEST(FuzzStream, DeterministicForAGivenSeed) {
  FuzzOptions options;
  options.seed = 9;
  Fuzzer a(options), b(options);
  FuzzOptions other = options;
  other.seed = 10;
  Fuzzer c(other);
  bool any_difference = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(equal_cases(a.generate(i), b.generate(i))) << "index " << i;
    any_difference = any_difference || !equal_cases(a.generate(i), c.generate(i));
  }
  EXPECT_TRUE(any_difference) << "different seeds must give different streams";
}

TEST(FuzzStream, CoversFamiliesPatternsAndBothRegimes) {
  FuzzOptions options;
  options.seed = 1;
  Fuzzer fuzzer(options);
  std::set<std::string> families;
  std::set<InjectionPattern> patterns;
  std::size_t beyond = 0, fault_free = 0, at_delta = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const FuzzCase c = fuzzer.generate(i);
    families.insert(c.spec.substr(0, c.spec.find(' ')));
    patterns.insert(c.pattern);
    beyond += c.faults.size() > c.delta ? 1 : 0;
    fault_free += c.faults.empty() ? 1 : 0;
    at_delta += c.faults.size() == c.delta ? 1 : 0;
  }
  EXPECT_GE(families.size(), 6u);
  EXPECT_EQ(patterns.size(), 4u);
  EXPECT_GT(beyond, 0u) << "stream must leave the promised regime sometimes";
  EXPECT_GT(fault_free, 0u);
  EXPECT_GT(at_delta, 0u);
}

TEST(FuzzDifferential, CleanRunOnTheSeededStream) {
  FuzzOptions options;
  options.cases = 80;
  options.seed = 2026;
  Fuzzer fuzzer(options);
  const FuzzSummary summary = fuzzer.run();
  EXPECT_TRUE(summary.clean()) << summary.bugs.front().detail;
  EXPECT_EQ(summary.cases_run, 80u);
  EXPECT_FALSE(summary.budget_exhausted);
  std::uint64_t family_total = 0;
  for (const auto& [family, count] : summary.cases_per_family) {
    family_total += count;
  }
  EXPECT_EQ(family_total, summary.cases_run);
}

TEST(FuzzDifferential, BeyondDeltaSurroundPlusCentreFailsGracefully) {
  // F = N(0) + {0} on Q5 at delta 3: far beyond the bound and built to be
  // ambiguous. Graceful means: no exception, no over-delta claim, and the
  // verified configuration never lets an inconsistent success through.
  FuzzContext ctx;
  FuzzCase c;
  c.spec = "hypercube 5";
  c.delta = 3;
  c.pattern = InjectionPattern::kSurround;
  c.behavior = FaultyBehavior::kAllOne;
  c.faults = {0, 1, 2, 4, 8, 16};
  const DiffReport report = run_differential(ctx, c);
  EXPECT_TRUE(report.beyond_delta);
  EXPECT_FALSE(report.diverged())
      << report.divergences.front().config << ": "
      << report.divergences.front().detail;
}

TEST(FuzzDifferential, OutOfRangeFaultIdIsRejected) {
  FuzzContext ctx;
  FuzzCase c;
  c.spec = "star 4";
  c.delta = 3;
  c.faults = {9999};
  EXPECT_THROW((void)run_differential(ctx, c), std::invalid_argument);
}

TEST(FuzzSabotage, DropFaultIsFoundMinimizedAndReplayable) {
  FuzzOptions options;
  options.cases = 200;
  options.seed = 1;
  options.sabotage = Sabotage::kDropFault;
  Fuzzer fuzzer(options);
  const FuzzSummary summary = fuzzer.run();
  ASSERT_EQ(summary.bugs.size(), 1u);
  const FuzzBug& bug = summary.bugs.front();
  EXPECT_EQ(bug.config, "sabotage-drop-fault");
  // Dropping a fault only diverges when there is a fault to drop, so the
  // minimizer must bottom out at exactly one.
  EXPECT_EQ(bug.minimized.faults.size(), 1u);
  EXPECT_LE(bug.minimized.faults.size(), bug.original.faults.size());
  // The minimized case replays: diverges under the sabotage, clean without.
  EXPECT_TRUE(
      run_differential(fuzzer.context(), bug.minimized, Sabotage::kDropFault)
          .diverged());
  EXPECT_FALSE(
      run_differential(fuzzer.context(), bug.minimized, Sabotage::kNone)
          .diverged());
}

TEST(FuzzSabotage, RuleMismatchIsCaughtByTheAdoptingCtor) {
  // The historical bug class: adopting a kSpread-calibrated partition with
  // kLeastFirst options. Every case trips it, so the minimizer must reach
  // a fault-free case; the divergence must be the ctor's rejection, not a
  // silent wrong diagnosis. MM*-only stream: the adopting ctor is an MM*
  // driver detail (model_fuzz_test covers the directed sabotage analogues).
  FuzzOptions options;
  options.cases = 10;
  options.seed = 3;
  options.models = {DiagnosisModel::kMMStar};
  options.sabotage = Sabotage::kRuleMismatch;
  Fuzzer fuzzer(options);
  const FuzzSummary summary = fuzzer.run();
  ASSERT_EQ(summary.bugs.size(), 1u);
  const FuzzBug& bug = summary.bugs.front();
  EXPECT_EQ(bug.config, "sabotage-rule-mismatch");
  EXPECT_NE(bug.detail.find("calibration rule"), std::string::npos)
      << bug.detail;
  EXPECT_TRUE(bug.minimized.faults.empty());
}

TEST(ReproFiles, RoundTripPreservesEveryField) {
  FuzzCase c;
  c.spec = "kary_ncube 2 6";
  c.delta = 3;
  c.pattern = InjectionPattern::kTargeted;
  c.inject_seed = 0xfeedface12345678ULL;
  c.behavior = FaultyBehavior::kAntiDiagnostic;
  c.behavior_seed = 42;
  c.faults = {3, 17, 21};
  std::stringstream ss;
  write_repro(ss, c);
  EXPECT_TRUE(equal_cases(c, read_repro(ss)));

  FuzzCase empty = c;
  empty.faults.clear();
  std::stringstream ss2;
  write_repro(ss2, empty);
  EXPECT_TRUE(equal_cases(empty, read_repro(ss2)));

  // The rule provenance line round-trips through the shared
  // parent_rule_to_string/parent_rule_from_string helpers.
  FuzzCase ruled = c;
  ruled.rule = ParentRule::kLeastFirst;
  std::stringstream ss3;
  write_repro(ss3, ruled);
  EXPECT_NE(ss3.str().find("rule least-first"), std::string::npos);
  EXPECT_TRUE(equal_cases(ruled, read_repro(ss3)));
}

TEST(ReproFiles, RuleLineIsOptionalForOlderReprosAndValidated) {
  // Corpus files written before the rule line existed must keep parsing
  // (defaulting to spread)...
  std::istringstream legacy(
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 2\nfaults 1 2\nend\n");
  const FuzzCase c = read_repro(legacy);
  EXPECT_EQ(c.rule, ParentRule::kSpread);
  EXPECT_EQ(c.faults, (std::vector<Node>{1, 2}));
  // ... while an unknown rule name is a line-numbered parse error.
  std::istringstream bad(
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 2\nrule fastest\n"
      "faults 1\nend\n");
  try {
    (void)read_repro(bad);
    FAIL() << "accepted unknown rule name";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 8"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("fastest"), std::string::npos);
  }
}

TEST(ReproFiles, MalformedInputsThrowWithLineNumbers) {
  const auto expect_bad = [](const std::string& text) {
    std::istringstream in(text);
    try {
      (void)read_repro(in);
      FAIL() << "accepted malformed repro:\n" << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << e.what();
    }
  };
  expect_bad("mmdiag-syndrome v1\n");
  expect_bad("mmdiag-repro v1\nspec star 4\ndelta 0\n");
  // The reported number must be the offending line, not the one before it.
  {
    std::istringstream in("mmdiag-repro v1\nspec star 4\ndelta zz\n");
    try {
      (void)read_repro(in);
      FAIL();
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
    }
  }
  expect_bad("mmdiag-repro v1\nspec star 4\ndelta 3\npattern diagonal\n");
  expect_bad(
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior liar\n");
  expect_bad(
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 1\nfaults 1 junk\nend\n");
  expect_bad(
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 1\nfaults 2 2\nend\n");
  expect_bad(
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 1\nfaults 1\n");
}

TEST(ReproCorpus, EveryCheckedInReproReplaysClean) {
  // Every file under tests/corpus pins a case the fuzzer (or a session)
  // once flagged; a divergence here is a regression of a fixed bug.
  namespace fs = std::filesystem;
  const fs::path dir(MMDIAG_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir.string();
  FuzzContext ctx;
  std::size_t replayed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open());
    const FuzzCase c = read_repro(in);
    const DiffReport report = run_differential(ctx, c);
    EXPECT_FALSE(report.diverged())
        << report.divergences.front().config << ": "
        << report.divergences.front().detail;
    ++replayed;
  }
  EXPECT_GE(replayed, 3u);
}

}  // namespace
}  // namespace mmdiag
