// Set_Builder (§4.1) unit and property tests.
#include <gtest/gtest.h>

#include "core/set_builder.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(SetBuilder, FaultFreeRunCoversGraphAndCertifies) {
  test::Instance inst("hypercube 5");
  const FaultFreeOracle oracle(inst.graph);
  SetBuilder builder(inst.graph, ParentRule::kLeastFirst);
  const auto res = builder.run(oracle, 0, 5);
  EXPECT_TRUE(res.all_healthy);
  EXPECT_EQ(res.members.size(), 32u);
  EXPECT_EQ(res.members[0], 0u);
  EXPECT_EQ(res.parent[0], kNoNode);
  for (Node v = 0; v < 32; ++v) EXPECT_TRUE(builder.in_last_set(v));
}

// The closed form behind DESIGN.md §4.1: under the paper's least-parent
// rule, the fault-free Set_Builder tree on Q_m rooted at 0 has exactly
// 2^{m-1} internal nodes (a weight-w node contributes iff its top set bit
// is not m-1).
TEST(SetBuilder, LeastRuleContributorsOnHypercubeClosedForm) {
  for (unsigned m = 3; m <= 7; ++m) {
    test::Instance inst("hypercube " + std::to_string(m));
    const FaultFreeOracle oracle(inst.graph);
    SetBuilder builder(inst.graph, ParentRule::kLeastFirst);
    const auto res = builder.run(oracle, 0, /*delta=*/1u << m);  // no certify
    EXPECT_EQ(res.contributors, 1u << (m - 1)) << "m=" << m;
    EXPECT_EQ(res.rounds, m) << "m=" << m;  // BFS layers of Q_m
  }
}

TEST(SetBuilder, SpreadRuleBeatsLeastRuleOnQ4) {
  test::Instance inst("hypercube 4");
  const FaultFreeOracle oracle(inst.graph);
  SetBuilder least(inst.graph, ParentRule::kLeastFirst);
  SetBuilder spread(inst.graph, ParentRule::kSpread);
  const auto rl = least.run(oracle, 0, 100);
  const auto rs = spread.run(oracle, 0, 100);
  EXPECT_EQ(rl.contributors, 8u);
  EXPECT_GE(rs.contributors, 9u);  // rescues certification for delta = 8
  EXPECT_EQ(rs.members.size(), rl.members.size());  // same U, different tree
}

TEST(SetBuilder, MembershipIsRuleIndependent) {
  // U_r is the 0-test reachability closure, so all four parent rules grow
  // the same member set (only the trees differ).
  test::Instance inst("crossed_cube 7");
  Rng rng(55);
  const FaultSet faults(128, inject_uniform(128, 7, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 4);
  std::vector<Node> reference;
  for (const auto rule : {ParentRule::kLeastFirst, ParentRule::kSpread,
                          ParentRule::kLeastSync, ParentRule::kHashSpread}) {
    SetBuilder builder(inst.graph, rule);
    Node seed = 0;
    while (faults.is_faulty(seed)) ++seed;
    auto members = builder.run(oracle, seed, 7).members;
    std::sort(members.begin(), members.end());
    if (reference.empty()) {
      reference = members;
    } else {
      EXPECT_EQ(members, reference) << to_string(rule);
    }
  }
}

TEST(SetBuilder, ParentStructureIsAValidLayeredTree) {
  test::Instance inst("crossed_cube 5");
  const FaultFreeOracle oracle(inst.graph);
  for (const auto rule : {ParentRule::kLeastFirst, ParentRule::kSpread}) {
    SetBuilder builder(inst.graph, rule);
    const auto res = builder.run(oracle, 3, 5);
    ASSERT_EQ(res.members.size(), res.parent.size());
    StampSet seen(inst.graph.num_nodes());
    std::size_t distinct_parents = 0;
    StampSet parents(inst.graph.num_nodes());
    for (std::size_t i = 0; i < res.members.size(); ++i) {
      if (i == 0) {
        EXPECT_EQ(res.parent[0], kNoNode);
      } else {
        // Parent discovered before child, and adjacent to it.
        EXPECT_TRUE(seen.contains(res.parent[i]));
        EXPECT_TRUE(inst.graph.has_edge(res.members[i], res.parent[i]));
        if (parents.insert(res.parent[i])) ++distinct_parents;
      }
      seen.insert(res.members[i]);
    }
    EXPECT_EQ(res.contributors, distinct_parents) << to_string(rule);
  }
}

TEST(SetBuilder, RestrictedRunStaysInComponentAndCoversIt) {
  test::Instance inst("hypercube 6");
  const FaultFreeOracle oracle(inst.graph);
  const PrefixBitsPlan plan(6, 4);  // 4 components of 16 nodes
  SetBuilder builder(inst.graph, ParentRule::kSpread);
  for (std::uint32_t c = 0; c < 4; ++c) {
    const auto res = builder.run_restricted(oracle, plan.seed_of(c), 6, plan, c);
    EXPECT_EQ(res.members.size(), 16u);
    for (const Node v : res.members) EXPECT_EQ(plan.component_of(v), c);
  }
}

TEST(SetBuilder, SeedOutsideComponentThrows) {
  test::Instance inst("hypercube 5");
  const FaultFreeOracle oracle(inst.graph);
  const PrefixBitsPlan plan(5, 3);
  SetBuilder builder(inst.graph);
  EXPECT_THROW((void)builder.run_restricted(oracle, 0, 5, plan, 1),
               std::invalid_argument);
  EXPECT_THROW((void)builder.run(oracle, 9999, 5), std::invalid_argument);
}

// Core soundness induction of §4.1: if u0 is healthy then every member is.
TEST(SetBuilder, HealthySeedYieldsOnlyHealthyMembers) {
  test::Instance inst("hypercube 7");
  Rng rng(123);
  SetBuilder builder(inst.graph, ParentRule::kSpread);
  for (int trial = 0; trial < 20; ++trial) {
    const FaultSet faults(inst.graph.num_nodes(),
                          inject_uniform(inst.graph.num_nodes(), 7, rng));
    for (const auto behavior : kAllFaultyBehaviors) {
      const LazyOracle oracle(inst.graph, faults, behavior, trial);
      // Pick a healthy seed.
      Node seed = 0;
      while (faults.is_faulty(seed)) ++seed;
      const auto res = builder.run(oracle, seed, 7);
      for (const Node v : res.members) {
        EXPECT_FALSE(faults.is_faulty(v))
            << "behavior " << to_string(behavior) << " trial " << trial;
      }
    }
  }
}

// Certificate soundness: whenever all_healthy fires — from ANY seed, even a
// faulty one, under ANY faulty-tester behaviour — the members really are all
// healthy, provided |F| <= delta.
TEST(SetBuilder, CertificateIsSoundFromArbitrarySeeds) {
  test::Instance inst("hypercube 7");
  const unsigned delta = 7;
  Rng rng(321);
  for (const auto rule : {ParentRule::kLeastFirst, ParentRule::kSpread,
                          ParentRule::kLeastSync, ParentRule::kHashSpread}) {
    SetBuilder builder(inst.graph, rule);
    for (int trial = 0; trial < 15; ++trial) {
      const FaultSet faults(inst.graph.num_nodes(),
                            inject_uniform(inst.graph.num_nodes(), delta, rng));
      for (const auto behavior : kAllFaultyBehaviors) {
        const LazyOracle oracle(inst.graph, faults, behavior, trial * 7);
        const Node seed = static_cast<Node>(rng.below(inst.graph.num_nodes()));
        const auto res = builder.run(oracle, seed, delta);
        if (res.all_healthy) {
          for (const Node v : res.members) {
            EXPECT_FALSE(faults.is_faulty(v)) << to_string(behavior);
          }
        }
      }
    }
  }
}

// §4.2: if the run terminates uncertified, the number of growth rounds is
// bounded by the contributor count, hence by delta.
TEST(SetBuilder, UncertifiedRunsHaveFewRounds) {
  test::Instance inst("hypercube 7");
  const unsigned delta = 7;
  Rng rng(99);
  SetBuilder builder(inst.graph, ParentRule::kLeastFirst);
  for (int trial = 0; trial < 30; ++trial) {
    const FaultSet faults(inst.graph.num_nodes(),
                          inject_uniform(inst.graph.num_nodes(), delta, rng));
    const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const Node seed = static_cast<Node>(rng.below(inst.graph.num_nodes()));
    const auto res = builder.run(oracle, seed, delta);
    if (!res.all_healthy) {
      EXPECT_LE(res.rounds, delta);
      EXPECT_LE(res.contributors, delta);
    }
  }
}

// §6 look-up bound: at most Δ(Δ-1)/2 results from the root and Δ-1 from
// every other member.
TEST(SetBuilder, LookupBoundFromSection6) {
  test::Instance inst("hypercube 8");
  Rng rng(7);
  const unsigned delta = 8;
  for (const auto rule : {ParentRule::kLeastFirst, ParentRule::kSpread,
                          ParentRule::kLeastSync, ParentRule::kHashSpread}) {
    SetBuilder builder(inst.graph, rule);
    for (int trial = 0; trial < 10; ++trial) {
      const FaultSet faults(inst.graph.num_nodes(),
                            inject_uniform(inst.graph.num_nodes(), delta, rng));
      const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, trial);
      const auto res = builder.run(oracle, 0, delta);
      const std::uint64_t max_deg = inst.graph.max_degree();
      const std::uint64_t bound =
          max_deg * (max_deg - 1) / 2 + (res.members.size() - 1) * (max_deg - 1);
      EXPECT_LE(oracle.lookups(), bound) << to_string(rule);
    }
  }
}

TEST(SetBuilder, StopOnCertifyStopsEarlyButSoundly) {
  test::Instance inst("hypercube 8");
  const FaultFreeOracle oracle(inst.graph);
  SetBuilder eager(inst.graph, ParentRule::kSpread);
  SetBuilder full(inst.graph, ParentRule::kSpread);
  eager.set_stop_on_certify(true);
  const auto re = eager.run(oracle, 0, 8);
  const auto rf = full.run(oracle, 0, 8);
  EXPECT_TRUE(re.all_healthy);
  EXPECT_TRUE(rf.all_healthy);
  EXPECT_LE(re.members.size(), rf.members.size());
  EXPECT_EQ(rf.members.size(), inst.graph.num_nodes());
}

TEST(SetBuilder, IsolatedHealthySeedProducesSingleton) {
  // Surround a node by faults: no test can admit anyone into U.
  test::Instance inst("hypercube 5");
  const FaultSet faults(32, inject_surround(inst.graph, 0));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 1);
  SetBuilder builder(inst.graph);
  const auto res = builder.run(oracle, 0, 5);
  EXPECT_EQ(res.members.size(), 1u);
  EXPECT_EQ(res.rounds, 0u);
  EXPECT_FALSE(res.all_healthy);
}

}  // namespace
}  // namespace mmdiag
