// Full pipeline round-trip: inject faults, generate a syndrome, serialise it
// with io/syndrome_io, re-read the file, diagnose the reloaded instance, and
// require the recovered fault set to equal the injected one — across three
// structurally different topology families.
#include <gtest/gtest.h>

#include <sstream>

#include "core/diagnoser.hpp"
#include "io/syndrome_io.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

struct RoundTripCase {
  const char* spec;
  std::size_t fault_count;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTrip, WriteReadDiagnoseRecoversInjectedFaults) {
  const RoundTripCase& tc = GetParam();
  SCOPED_TRACE(tc.spec);
  test::Instance inst(tc.spec);
  const std::size_t n = inst.graph.num_nodes();

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed);
    const FaultSet faults(n, inject_uniform(n, tc.fault_count, rng));
    const Syndrome original = generate_syndrome(
        inst.graph, faults, FaultyBehavior::kAntiDiagnostic, seed);

    std::stringstream buffer;
    write_syndrome(buffer, tc.spec, inst.graph, original);

    const LoadedSyndrome loaded = read_syndrome(buffer);
    EXPECT_EQ(loaded.spec, tc.spec);
    ASSERT_EQ(loaded.graph.num_nodes(), n);

    Diagnoser diagnoser(*loaded.topology, loaded.graph);
    const TableOracle oracle(loaded.graph, loaded.syndrome);
    const auto result = diagnoser.diagnose(oracle);
    ASSERT_TRUE(result.success) << result.failure_reason;
    EXPECT_EQ(result.faults, faults.nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RoundTrip,
    ::testing::Values(RoundTripCase{"hypercube 7", 7},
                      RoundTripCase{"crossed_cube 7", 6},
                      RoundTripCase{"star 5", 4}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      std::string name = info.param.spec;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

// The faults written next to a syndrome file (the node-list side channel)
// survive the same boundary.
TEST(RoundTrip, NodeListSidecarMatchesDiagnosis) {
  test::Instance inst("hypercube 7");
  Rng rng(7);
  const FaultSet faults(128, inject_uniform(128, 4, rng));
  const Syndrome syndrome =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 7);

  std::stringstream syndrome_file;
  write_syndrome(syndrome_file, "hypercube 7", inst.graph, syndrome);
  std::stringstream sidecar;
  write_node_list(sidecar, faults.nodes());

  LoadedSyndrome loaded = read_syndrome(syndrome_file);
  Diagnoser diagnoser(*loaded.topology, loaded.graph);
  const TableOracle oracle(loaded.graph, loaded.syndrome);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.faults, read_node_list(sidecar));
}

}  // namespace
}  // namespace mmdiag
