// Distributed cost-model simulation (§6 further research).
#include <gtest/gtest.h>

#include "core/distributed.hpp"
#include "graph/traversal.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(Distributed, SetBuilderCostSucceedsAndIsBounded) {
  test::Instance inst("hypercube 8");
  Rng rng(1);
  const FaultSet faults(256, inject_uniform(256, 8, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const auto cost = distributed_set_builder_cost(*inst.topo, inst.graph, oracle);
  EXPECT_TRUE(cost.success);
  EXPECT_GT(cost.rounds, 0u);
  // Offers/replies are per scanned edge: bounded by a small multiple of the
  // directed edge count plus flooding.
  EXPECT_LE(cost.messages, 8 * 2 * inst.graph.num_edges() + 4 * 256);
  EXPECT_GT(cost.local_work, 0u);
}

TEST(Distributed, ChiangTanCostModel) {
  test::Instance inst("hypercube 8");
  const Hypercube topo(8);
  Rng rng(2);
  const FaultSet faults(256, inject_uniform(256, 8, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 2);
  const auto cost = distributed_chiang_tan_cost(topo, inst.graph, oracle);
  EXPECT_TRUE(cost.success);
  EXPECT_EQ(cost.rounds, 6u);
  EXPECT_EQ(cost.messages, 6ull * 8 * 256);
}

TEST(Distributed, SetBuilderUsesFewerMessagesThanChiangTan) {
  // The §6 claim our E9 experiment quantifies: the Set_Builder diagnosis
  // moves fewer messages (Chiang-Tan relays every branch bit at every node),
  // while Chiang-Tan wins on rounds (constant vs diameter-bounded).
  test::Instance inst("hypercube 9");
  const Hypercube topo(9);
  Rng rng(3);
  const FaultSet faults(512, inject_uniform(512, 9, rng));
  const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, 3);
  const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, 3);
  const auto ours = distributed_set_builder_cost(*inst.topo, inst.graph, o1);
  const auto ct = distributed_chiang_tan_cost(topo, inst.graph, o2);
  ASSERT_TRUE(ours.success);
  ASSERT_TRUE(ct.success);
  EXPECT_LT(ours.messages, ct.messages);
  EXPECT_LT(ours.local_work, ct.local_work);
  EXPECT_GE(ours.rounds, ct.rounds);
}

TEST(Distributed, CostModelIsTopologyGeneric) {
  // The analytic model is not hypercube-specific: run it on a star graph.
  test::Instance inst("star 5");
  Rng rng(6);
  const FaultSet faults(120, inject_uniform(120, 4, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 2);
  const auto cost = distributed_set_builder_cost(*inst.topo, inst.graph, oracle);
  EXPECT_TRUE(cost.success);
  EXPECT_GT(cost.rounds, 0u);
  EXPECT_GT(cost.messages, 0u);
}

TEST(Distributed, FailsHonestlyWhenOverloaded) {
  test::Instance inst("hypercube 7");
  Rng rng(4);
  const FaultSet faults(128, inject_uniform(128, 40, rng));  // way over delta
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllZero, 0);
  const auto cost = distributed_set_builder_cost(*inst.topo, inst.graph, oracle);
  // All-zero liars may still let some component certify; if not, the cost
  // model reports failure. Either way it must not crash and must account
  // for the probe work.
  EXPECT_GT(cost.messages, 0u);
}

}  // namespace
}  // namespace mmdiag
