// Shared helpers for mmdiag tests.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mm/fault_set.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "topology/registry.hpp"
#include "topology/topology.hpp"

namespace mmdiag::test {

/// A topology instance together with its materialised graph.
struct Instance {
  std::unique_ptr<Topology> topo;
  Graph graph;

  explicit Instance(const std::string& spec)
      : topo(make_topology_from_spec(spec)), graph(topo->build_graph()) {}
};

/// Sorted copy helper for comparing fault lists.
inline std::vector<Node> sorted(std::vector<Node> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace mmdiag::test
