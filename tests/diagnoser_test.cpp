// Targeted tests of the Theorem-1 driver on hypercubes.
#include <gtest/gtest.h>

#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

class HypercubeDiagnosis : public ::testing::Test {
 protected:
  HypercubeDiagnosis() : inst_("hypercube 7") {}
  test::Instance inst_;
};

TEST_F(HypercubeDiagnosis, RecoversEveryFaultCountUnderEveryBehavior) {
  Diagnoser diagnoser(*inst_.topo, inst_.graph);
  Rng rng(2024);
  for (unsigned count = 0; count <= 7; ++count) {
    for (const auto behavior : kAllFaultyBehaviors) {
      const FaultSet faults(inst_.graph.num_nodes(),
                            inject_uniform(inst_.graph.num_nodes(), count, rng));
      const LazyOracle oracle(inst_.graph, faults, behavior, count);
      const auto result = diagnoser.diagnose(oracle);
      ASSERT_TRUE(result.success)
          << count << " faults, " << to_string(behavior) << ": "
          << result.failure_reason;
      EXPECT_EQ(result.faults, faults.nodes());
      EXPECT_LE(result.probes, 8u);  // delta + 1
    }
  }
}

TEST_F(HypercubeDiagnosis, TableAndLazyOraclesGiveIdenticalDiagnoses) {
  Diagnoser diagnoser(*inst_.topo, inst_.graph);
  Rng rng(5);
  const FaultSet faults(inst_.graph.num_nodes(),
                        inject_uniform(inst_.graph.num_nodes(), 6, rng));
  const Syndrome syndrome =
      generate_syndrome(inst_.graph, faults, FaultyBehavior::kRandom, 42);
  const TableOracle table(inst_.graph, syndrome);
  const LazyOracle lazy(inst_.graph, faults, FaultyBehavior::kRandom, 42);
  const auto from_table = diagnoser.diagnose(table);
  const auto from_lazy = diagnoser.diagnose(lazy);
  ASSERT_TRUE(from_table.success);
  ASSERT_TRUE(from_lazy.success);
  EXPECT_EQ(from_table.faults, from_lazy.faults);
  EXPECT_EQ(from_table.lookups, from_lazy.lookups);
}

TEST_F(HypercubeDiagnosis, SurroundedNodeIsNotMisdiagnosed) {
  // F = all neighbours of node 0 (|F| = 7 = delta). Node 0 is healthy but
  // unreachable; the unique answer of size <= 7 is N(0) itself.
  Diagnoser diagnoser(*inst_.topo, inst_.graph);
  const auto surround = inject_surround(inst_.graph, 0);
  const FaultSet faults(inst_.graph.num_nodes(), surround);
  for (const auto behavior : kAllFaultyBehaviors) {
    const LazyOracle oracle(inst_.graph, faults, behavior, 9);
    const auto result = diagnoser.diagnose(oracle);
    ASSERT_TRUE(result.success) << to_string(behavior);
    EXPECT_EQ(result.faults, faults.nodes());
    // Node 0 must not appear faulty.
    EXPECT_FALSE(std::binary_search(result.faults.begin(), result.faults.end(),
                                    Node{0}));
  }
}

TEST_F(HypercubeDiagnosis, ClusteredFaultsRecovered) {
  Diagnoser diagnoser(*inst_.topo, inst_.graph);
  const FaultSet faults(inst_.graph.num_nodes(),
                        inject_clustered(inst_.graph, 37, 7));
  const LazyOracle oracle(inst_.graph, faults, FaultyBehavior::kAllZero, 0);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.faults, faults.nodes());
}

TEST_F(HypercubeDiagnosis, FaultsInsideProbedComponentForceLaterSeed) {
  Diagnoser diagnoser(*inst_.topo, inst_.graph);
  const PartitionPlan& plan = *diagnoser.partition().plan;
  Rng rng(8);
  // Confine all faults to component 0: its probe cannot certify (it has
  // faults and only 16 nodes), so the driver must move on.
  const auto faults_vec = inject_where(
      inst_.graph.num_nodes(), 7,
      [&](Node v) { return plan.component_of(v) == 0; }, rng);
  const FaultSet faults(inst_.graph.num_nodes(), faults_vec);
  const LazyOracle oracle(inst_.graph, faults, FaultyBehavior::kRandom, 3);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.faults, faults.nodes());
  EXPECT_GE(result.probes, 2u);
}

TEST_F(HypercubeDiagnosis, AccountingFieldsAreCoherent) {
  Diagnoser diagnoser(*inst_.topo, inst_.graph);
  Rng rng(13);
  const FaultSet faults(inst_.graph.num_nodes(),
                        inject_uniform(inst_.graph.num_nodes(), 5, rng));
  const LazyOracle oracle(inst_.graph, faults, FaultyBehavior::kRandom, 1);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.lookups, oracle.lookups());
  // The healthy graph remained connected here, so U_r = V \ F.
  EXPECT_EQ(result.final_members, inst_.graph.num_nodes() - faults.size());
  EXPECT_GE(result.final_rounds, 1u);
}

TEST_F(HypercubeDiagnosis, PaperParentRuleWorksOnQ7) {
  DiagnoserOptions options;
  options.rule = ParentRule::kLeastFirst;
  Diagnoser diagnoser(*inst_.topo, inst_.graph, options);
  Rng rng(21);
  const FaultSet faults(inst_.graph.num_nodes(),
                        inject_uniform(inst_.graph.num_nodes(), 7, rng));
  const LazyOracle oracle(inst_.graph, faults, FaultyBehavior::kAntiDiagnostic, 2);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.faults, faults.nodes());
}

TEST_F(HypercubeDiagnosis, StopProbeOnCertifySameAnswerFewerLookups) {
  DiagnoserOptions eager;
  eager.stop_probe_on_certify = true;
  Diagnoser fast(*inst_.topo, inst_.graph, eager);
  Diagnoser faithful(*inst_.topo, inst_.graph);
  Rng rng(4);
  const FaultSet faults(inst_.graph.num_nodes(),
                        inject_uniform(inst_.graph.num_nodes(), 6, rng));
  const LazyOracle o1(inst_.graph, faults, FaultyBehavior::kRandom, 6);
  const LazyOracle o2(inst_.graph, faults, FaultyBehavior::kRandom, 6);
  const auto r_fast = fast.diagnose(o1);
  const auto r_faithful = faithful.diagnose(o2);
  ASSERT_TRUE(r_fast.success);
  ASSERT_TRUE(r_faithful.success);
  EXPECT_EQ(r_fast.faults, r_faithful.faults);
  EXPECT_LE(r_fast.lookups, r_faithful.lookups);
}

TEST_F(HypercubeDiagnosis, SmallerDeltaOverrideIsHonoured) {
  DiagnoserOptions options;
  options.delta = 3;
  Diagnoser diagnoser(*inst_.topo, inst_.graph, options);
  EXPECT_EQ(diagnoser.delta(), 3u);
  Rng rng(17);
  const FaultSet faults(inst_.graph.num_nodes(),
                        inject_uniform(inst_.graph.num_nodes(), 3, rng));
  const LazyOracle oracle(inst_.graph, faults, FaultyBehavior::kRandom, 0);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.faults, faults.nodes());
  EXPECT_LE(result.probes, 4u);
}

TEST(DiagnoserAdoption, MismatchedParentRuleIsRejected) {
  // The partition records the rule it was calibrated under; adopting it
  // with a different probe rule used to be silent misuse (the probes could
  // fail to replay the calibration) and must now throw.
  test::Instance inst("hypercube 7");
  Diagnoser calibrated(*inst.topo, inst.graph);  // rule = kSpread
  EXPECT_EQ(calibrated.partition().rule, ParentRule::kSpread);
  DiagnoserOptions mismatched;
  mismatched.rule = ParentRule::kLeastFirst;
  EXPECT_THROW(Diagnoser(inst.graph, calibrated.partition(), mismatched),
               std::invalid_argument);
  // The matching rule still adopts fine.
  EXPECT_NO_THROW(Diagnoser(inst.graph, calibrated.partition(), {}));
}

TEST(DiagnoserAdoption, ConflictingDeltaIsRejected) {
  test::Instance inst("hypercube 7");
  Diagnoser calibrated(*inst.topo, inst.graph);  // delta = 7
  DiagnoserOptions conflicting;
  conflicting.delta = 5;
  EXPECT_THROW(Diagnoser(inst.graph, calibrated.partition(), conflicting),
               std::invalid_argument);
  // delta == 0 means "adopt the partition's bound", delta == bound agrees.
  DiagnoserOptions agreeing;
  agreeing.delta = 7;
  EXPECT_NO_THROW(Diagnoser(inst.graph, calibrated.partition(), agreeing));
}

TEST(DiagnoserLookups, Section6BoundHolds) {
  test::Instance inst("hypercube 10");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(31);
  const FaultSet faults(inst.graph.num_nodes(),
                        inject_uniform(inst.graph.num_nodes(), 10, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 77);
  const auto result = diagnoser.diagnose(oracle);
  ASSERT_TRUE(result.success);
  const std::uint64_t delta_max = inst.graph.max_degree();
  // (Δ-1)(Δ/2 + |U_r| - 1) for the final run, plus the probe phase which is
  // bounded by (δ+1) components of the same shape.
  const std::uint64_t final_bound =
      (delta_max - 1) * (delta_max / 2 + result.final_members - 1) + delta_max;
  const std::uint64_t probe_bound =
      result.probes *
      ((delta_max - 1) *
           (delta_max / 2 + diagnoser.partition().plan->component_size() - 1) +
       delta_max);
  EXPECT_LE(result.lookups, final_bound + probe_bound);
  // And the full syndrome table is much larger.
  const Syndrome table(inst.graph);
  EXPECT_LT(result.lookups, table.total_tests() / 2);
}

}  // namespace
}  // namespace mmdiag
