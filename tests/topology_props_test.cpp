// Deep structural checks: exact vertex connectivity of small instances
// (validating the published κ values the paper's Theorem 1 relies on, and in
// particular our reconstructed twisted-cube / shuffle-cube / augmented
// k-ary definitions), plus known-adjacency spot checks.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "test_util.hpp"
#include "topology/crossed_cube.hpp"

namespace mmdiag {
namespace {

struct KappaCase {
  std::string spec;
  unsigned expected_kappa;
};

class ExactConnectivity : public ::testing::TestWithParam<KappaCase> {};

TEST_P(ExactConnectivity, MatchesPublishedValue) {
  test::Instance inst(GetParam().spec);
  EXPECT_EQ(vertex_connectivity(inst.graph), GetParam().expected_kappa)
      << inst.topo->info().name;
  // The info() field must agree with the computed truth.
  EXPECT_EQ(inst.topo->info().connectivity, GetParam().expected_kappa);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, ExactConnectivity,
    ::testing::Values(KappaCase{"hypercube 3", 3},              //
                      KappaCase{"hypercube 5", 5},              //
                      KappaCase{"crossed_cube 3", 3},           //
                      KappaCase{"crossed_cube 5", 5},           //
                      KappaCase{"twisted_cube 3", 3},           //
                      KappaCase{"twisted_cube 5", 5},           //
                      KappaCase{"twisted_cube 7", 7},           //
                      KappaCase{"folded_hypercube 4", 5},       //
                      KappaCase{"folded_hypercube 5", 6},       //
                      KappaCase{"enhanced_hypercube 5 3", 6},   //
                      KappaCase{"enhanced_hypercube 6 4", 7},   //
                      KappaCase{"augmented_cube 3", 4},         // known anomaly
                      KappaCase{"augmented_cube 4", 7},         //
                      KappaCase{"augmented_cube 5", 9},         //
                      KappaCase{"shuffle_cube 6", 6},           // DESIGN.md §4.4
                      KappaCase{"twisted_n_cube 3", 3},         //
                      KappaCase{"twisted_n_cube 5", 5},         //
                      KappaCase{"kary_ncube 2 4", 4},           //
                      KappaCase{"kary_ncube 2 5", 4},           //
                      KappaCase{"kary_ncube 3 3", 6},           //
                      KappaCase{"augmented_kary_ncube 2 4", 6}, //
                      KappaCase{"augmented_kary_ncube 2 5", 6}, //
                      KappaCase{"augmented_kary_ncube 3 3", 10},//
                      KappaCase{"star 4", 3},                   //
                      KappaCase{"star 5", 4},                   //
                      KappaCase{"nk_star 5 2", 4},              //
                      KappaCase{"nk_star 5 3", 4},              //
                      KappaCase{"pancake 4", 3},                //
                      KappaCase{"pancake 5", 4},                //
                      KappaCase{"arrangement 5 2", 6},          //
                      KappaCase{"arrangement 5 3", 6}),
    [](const ::testing::TestParamInfo<KappaCase>& info) {
      std::string name = info.param.spec;
      for (auto& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(HypercubeAdjacency, ExactNeighbours) {
  test::Instance inst("hypercube 3");
  EXPECT_EQ(test::sorted(inst.topo->neighbors(0)), (std::vector<Node>{1, 2, 4}));
  EXPECT_EQ(test::sorted(inst.topo->neighbors(5)), (std::vector<Node>{1, 4, 7}));
}

TEST(CrossedCubeAdjacency, MatchesDefinitionSmallCases) {
  // CQ_1 = K_2 and CQ_2 = C_4 (a single 4-cycle), per Efe.
  test::Instance cq1("crossed_cube 1");
  EXPECT_EQ(cq1.graph.num_edges(), 1u);
  test::Instance cq2("crossed_cube 2");
  EXPECT_EQ(cq2.graph.num_edges(), 4u);
  for (Node v = 0; v < 4; ++v) EXPECT_EQ(cq2.graph.degree(v), 2u);

  // Dimension-l neighbour map is an involution (adjacency is symmetric at
  // the same dimension).
  const CrossedCube cq5(5);
  for (Node u = 0; u < 32; ++u) {
    for (unsigned l = 0; l < 5; ++l) {
      const Node v = cq5.neighbor_in_dimension(u, l);
      EXPECT_EQ(cq5.neighbor_in_dimension(v, l), u);
    }
  }
}

TEST(CrossedCube, DiffersFromHypercubeAtDimension3AndUp) {
  test::Instance cq("crossed_cube 3");
  test::Instance q("hypercube 3");
  bool differs = false;
  std::vector<Node> a, b;
  for (Node v = 0; v < 8; ++v) {
    cq.topo->neighbors(v, a);
    q.topo->neighbors(v, b);
    if (test::sorted(a) != test::sorted(b)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(TwistedNCube, TwistIsLocalised) {
  test::Instance tq("twisted_n_cube 4");
  test::Instance q("hypercube 4");
  // Exactly the four special nodes 0,1,2,3 have a modified dimension-0 edge.
  for (Node v = 0; v < 16; ++v) {
    const auto tn = test::sorted(tq.topo->neighbors(v));
    const auto qn = test::sorted(q.topo->neighbors(v));
    if (v < 4) {
      EXPECT_NE(tn, qn) << v;
    } else {
      EXPECT_EQ(tn, qn) << v;
    }
  }
  EXPECT_TRUE(tq.graph.has_edge(0, 3));
  EXPECT_TRUE(tq.graph.has_edge(1, 2));
  EXPECT_FALSE(tq.graph.has_edge(0, 1));
  EXPECT_FALSE(tq.graph.has_edge(2, 3));
}

TEST(FoldedHypercube, ComplementEdgesPresent) {
  test::Instance fq("folded_hypercube 4");
  for (Node v = 0; v < 16; ++v) EXPECT_TRUE(fq.graph.has_edge(v, v ^ 0xFu));
}

TEST(EnhancedHypercube, ComplementsLowKBits) {
  test::Instance eq("enhanced_hypercube 5 3");
  for (Node v = 0; v < 32; ++v) EXPECT_TRUE(eq.graph.has_edge(v, v ^ 0x7u));
}

TEST(AugmentedCube, RecursiveSplitGivesAugmentedSubcubes) {
  // Fixing the top bit of AQ_4 must induce two copies of AQ_3.
  test::Instance aq4("augmented_cube 4");
  test::Instance aq3("augmented_cube 3");
  for (Node half = 0; half < 2; ++half) {
    for (Node w = 0; w < 8; ++w) {
      const Node u = (half << 3) | w;
      std::vector<Node> inside;
      for (const Node v : aq4.graph.neighbors(u)) {
        if ((v >> 3) == half) inside.push_back(v & 7u);
      }
      EXPECT_EQ(test::sorted(inside), test::sorted(aq3.topo->neighbors(w)))
          << "half " << half << " node " << w;
    }
  }
}

TEST(ShuffleCube, SixteenWayRecursiveSplit) {
  // Fixing the top four bits of SQ_6 must induce 16 copies of SQ_2 = Q_2.
  test::Instance sq6("shuffle_cube 6");
  for (Node block = 0; block < 16; ++block) {
    for (Node w = 0; w < 4; ++w) {
      const Node u = (block << 2) | w;
      std::vector<Node> inside;
      for (const Node v : sq6.graph.neighbors(u)) {
        if ((v >> 2) == block) inside.push_back(v & 3u);
      }
      EXPECT_EQ(test::sorted(inside),
                test::sorted({w ^ 1u, w ^ 2u}))  // Q_2 adjacency
          << "block " << block << " node " << w;
    }
  }
}

TEST(TwistedCube, FourWayRecursiveSplit) {
  // Fixing the top two bits of TQ_5 must induce four copies of TQ_3.
  test::Instance tq5("twisted_cube 5");
  test::Instance tq3("twisted_cube 3");
  for (Node block = 0; block < 4; ++block) {
    for (Node w = 0; w < 8; ++w) {
      const Node u = (block << 3) | w;
      std::vector<Node> inside;
      for (const Node v : tq5.graph.neighbors(u)) {
        if ((v >> 3) == block) inside.push_back(v & 7u);
      }
      EXPECT_EQ(test::sorted(inside), test::sorted(tq3.topo->neighbors(w)))
          << "block " << block << " node " << w;
    }
  }
}

TEST(KAryNCube, TorusAdjacency) {
  test::Instance q("kary_ncube 2 5");  // 5x5 torus
  // Node (r,c) has id r*5+c... coordinate 0 is the low digit.
  const Node u = 1 * 5 + 2;  // (1,2)
  EXPECT_EQ(test::sorted(q.topo->neighbors(u)),
            test::sorted({Node{1 * 5 + 3}, Node{1 * 5 + 1}, Node{2 * 5 + 2},
                          Node{0 * 5 + 2}}));
}

TEST(StarGraph, S3IsSixCycle) {
  test::Instance s3("star 3");
  EXPECT_EQ(s3.graph.num_nodes(), 6u);
  for (Node v = 0; v < 6; ++v) EXPECT_EQ(s3.graph.degree(v), 2u);
  EXPECT_EQ(vertex_connectivity(s3.graph), 2u);
}

TEST(NKStar, SnMinusOneMatchesStarGraphSize) {
  test::Instance nk("nk_star 5 4");
  test::Instance s("star 5");
  EXPECT_EQ(nk.graph.num_nodes(), s.graph.num_nodes());
  EXPECT_EQ(nk.graph.num_edges(), s.graph.num_edges());
  // S_{n,1} is the complete graph K_n.
  test::Instance k("nk_star 6 1");
  EXPECT_EQ(k.graph.num_edges(), 15u);
  EXPECT_EQ(k.graph.min_degree(), 5u);
}

TEST(Pancake, P3IsSixCycle) {
  test::Instance p3("pancake 3");
  EXPECT_EQ(p3.graph.num_nodes(), 6u);
  for (Node v = 0; v < 6; ++v) EXPECT_EQ(p3.graph.degree(v), 2u);
}

TEST(Arrangement, AnOneIsComplete) {
  test::Instance a("arrangement 5 1");
  EXPECT_EQ(a.graph.num_nodes(), 5u);
  EXPECT_EQ(a.graph.num_edges(), 10u);
}

TEST(Arrangement, DefaultFaultBoundIsNMinus1) {
  test::Instance a("arrangement 6 3");
  EXPECT_EQ(a.topo->info().diagnosability, 9u);
  EXPECT_EQ(a.topo->default_fault_bound(), 5u);  // Theorem 7: n-1
}

}  // namespace
}  // namespace mmdiag
