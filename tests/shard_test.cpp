// Sharded owner/halo engine suite: ShardPlan geometry and halo rings,
// ShardRowStore row fidelity and access policing, and the tentpole
// contract — ShardedDiagnoser results bit-identical to the monolithic
// Diagnoser (faults, failure strings, probes, rounds, members AND counted
// look-ups) across families, shard counts, deferred rules and both row
// modes (table copy and lazy demand-paged halo).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "distributed/shard_plan.hpp"
#include "distributed/shard_store.hpp"
#include "distributed/sharded_diagnoser.hpp"
#include "engine/engine.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "test_util.hpp"
#include "topology/registry.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

void expect_bit_identical(const DiagnosisResult& expected,
                          const DiagnosisResult& actual,
                          const std::string& what) {
  ASSERT_EQ(expected.success, actual.success) << what;
  EXPECT_EQ(expected.faults, actual.faults) << what;
  EXPECT_EQ(expected.failure_reason, actual.failure_reason) << what;
  EXPECT_EQ(expected.lookups, actual.lookups) << what;
  EXPECT_EQ(expected.probes, actual.probes) << what;
  EXPECT_EQ(expected.certified_component, actual.certified_component) << what;
  EXPECT_EQ(expected.final_members, actual.final_members) << what;
  EXPECT_EQ(expected.final_rounds, actual.final_rounds) << what;
}

/// The boundary set a shard's halo must equal: every non-owned node
/// adjacent to an owned node, computed straight from the definition.
std::set<Node> boundary_of(const Graph& graph, ShardRange owned) {
  std::set<Node> out;
  for (Node u = owned.lo; u < owned.hi; ++u) {
    for (const Node v : graph.neighbors(u)) {
      if (!owned.contains(v)) out.insert(v);
    }
  }
  return out;
}

std::set<Node> halo_as_set(const ShardPlan& plan, unsigned s) {
  std::set<Node> out;
  for (const ShardRange& r : plan.halo(s)) {
    for (Node v = r.lo; v < r.hi; ++v) out.insert(v);
  }
  return out;
}

// ---- ShardPlan geometry ----------------------------------------------------

TEST(ShardPlan, GeometryCutsPartitionTheNodeSpace) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{5},
                              std::size_t{64}, std::size_t{1000}}) {
    for (const unsigned shards : {1u, 2u, 7u, 64u}) {
      const ShardPlan plan(n, shards);
      ASSERT_EQ(plan.num_shards(), shards);
      ASSERT_EQ(plan.num_nodes(), n);
      std::uint64_t total = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const ShardRange r = plan.owned(s);
        EXPECT_LE(r.lo, r.hi);
        total += r.size();
        EXPECT_EQ(plan.halo_size(s), 0u);  // geometry-only: no halo
      }
      EXPECT_EQ(total, n);
      for (Node v = 0; v < n; ++v) {
        EXPECT_TRUE(plan.owned(plan.owner_of(v)).contains(v))
            << "n=" << n << " S=" << shards << " v=" << v;
      }
    }
  }
}

TEST(ShardPlan, MoreShardsThanNodesLeavesEmptyTailRanges) {
  const ShardPlan plan(5, 7);
  std::uint64_t total = 0;
  for (unsigned s = 0; s < 7; ++s) total += plan.owned(s).size();
  EXPECT_EQ(total, 5u);
  for (Node v = 0; v < 5; ++v) {
    EXPECT_TRUE(plan.owned(plan.owner_of(v)).contains(v));
  }
}

TEST(ShardPlan, RejectsShardCountsOutsideOneToSixtyFour) {
  const auto topo = make_topology_from_spec("hypercube 5");
  EXPECT_THROW((void)ShardPlan::make(*topo, 0), std::invalid_argument);
  EXPECT_THROW((void)ShardPlan::make(*topo, 65), std::invalid_argument);
  EXPECT_THROW(ShardPlan(10, 0), std::invalid_argument);
}

TEST(ShardPlan, ClosedFormHypercubeHaloEqualsEnumeratedBoundary) {
  test::Instance inst("hypercube 8");
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    const ShardPlan plan = ShardPlan::make(*inst.topo, shards);
    EXPECT_TRUE(plan.closed_form_halo()) << "S=" << shards;
    for (unsigned s = 0; s < shards; ++s) {
      EXPECT_EQ(halo_as_set(plan, s), boundary_of(inst.graph, plan.owned(s)))
          << "S=" << shards << " shard " << s;
    }
  }
}

TEST(ShardPlan, GenericHaloEqualsEnumeratedBoundary) {
  // star 6 has no closed-form cut; 7 shards on a hypercube is not a
  // power of two — both must fall back to adjacency enumeration and still
  // produce exactly the 1-hop boundary.
  for (const char* spec : {"star 6", "hypercube 8"}) {
    test::Instance inst(spec);
    const ShardPlan plan = ShardPlan::make(*inst.topo, 7);
    EXPECT_FALSE(plan.closed_form_halo()) << spec;
    for (unsigned s = 0; s < 7; ++s) {
      EXPECT_EQ(halo_as_set(plan, s), boundary_of(inst.graph, plan.owned(s)))
          << spec << " shard " << s;
    }
  }
}

TEST(ShardPlan, HaloSlotsAreDenseAndMissesReturnMinusOne) {
  test::Instance inst("kary_ncube 3 4");
  const ShardPlan plan = ShardPlan::make(*inst.topo, 5);
  for (unsigned s = 0; s < 5; ++s) {
    std::int64_t expected_slot = 0;
    for (const ShardRange& r : plan.halo(s)) {
      for (Node v = r.lo; v < r.hi; ++v) {
        EXPECT_TRUE(plan.in_halo(s, v));
        EXPECT_EQ(plan.halo_slot(s, v), expected_slot++);
      }
    }
    EXPECT_EQ(static_cast<std::uint64_t>(expected_slot), plan.halo_size(s));
    const ShardRange owned = plan.owned(s);
    for (Node v = owned.lo; v < owned.hi; ++v) {
      EXPECT_EQ(plan.halo_slot(s, v), -1) << "owned node in own halo";
    }
  }
}

// ---- ShardRowStore ---------------------------------------------------------

TEST(ShardRowStore, BothModesServeSyndromeRowsBitForBit) {
  test::Instance inst("hypercube 6");
  const std::size_t n = inst.graph.num_nodes();
  const ImplicitGraph view(*inst.topo);
  Rng rng(0x5702E);
  const FaultSet faults(n, inject_uniform(n, 4, rng));
  const Syndrome syndrome =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 11);
  const ShardPlan plan = ShardPlan::make(*inst.topo, 4);
  for (unsigned s = 0; s < 4; ++s) {
    const ShardRowStore table(plan, s, view, syndrome);
    const ShardRowStore lazy(plan, s, view, faults, FaultyBehavior::kRandom,
                             11);
    EXPECT_FALSE(table.lazy());
    EXPECT_TRUE(lazy.lazy());
    auto check = [&](Node u) {
      for (unsigned pivot = 0; pivot < inst.graph.degree(u); ++pivot) {
        const std::uint64_t want = syndrome.row_bits(u, pivot);
        EXPECT_EQ(table.row_bits(u, pivot), want)
            << "table s=" << s << " u=" << u << " pivot=" << pivot;
        EXPECT_EQ(lazy.row_bits(u, pivot), want)
            << "lazy s=" << s << " u=" << u << " pivot=" << pivot;
      }
    };
    const ShardRange owned = plan.owned(s);
    for (Node u = owned.lo; u < owned.hi; ++u) check(u);
    for (const ShardRange& r : plan.halo(s)) {
      for (Node u = r.lo; u < r.hi; ++u) check(u);
    }
    // Table mode exchanged the whole halo eagerly; lazy paged every halo
    // node exactly once (check() touched each).
    EXPECT_EQ(table.halo_blocks_exchanged(), plan.halo_size(s));
    EXPECT_EQ(lazy.halo_blocks_exchanged(), plan.halo_size(s));
    EXPECT_GT(table.memory_bytes(), 0u);
  }
}

TEST(ShardRowStore, ThrowsOutsideOwnedAndHalo) {
  // Q_8 under S=8: shard 0's halo is the blocks of peer shards 1, 2 and 4.
  // Block 7 is none of them, so any of its rows is out of bounds.
  test::Instance inst("hypercube 8");
  const ImplicitGraph view(*inst.topo);
  const ShardPlan plan = ShardPlan::make(*inst.topo, 8);
  const Node outside = plan.owned(7).lo;
  ASSERT_FALSE(plan.in_halo(0, outside));
  const FaultSet faults(inst.graph.num_nodes(), {});
  const Syndrome syndrome =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 1);
  const ShardRowStore table(plan, 0, view, syndrome);
  const ShardRowStore lazy(plan, 0, view, faults, FaultyBehavior::kRandom, 1);
  EXPECT_THROW((void)table.row_bits(outside, 0), std::logic_error);
  EXPECT_THROW((void)lazy.row_bits(outside, 0), std::logic_error);
}

// ---- ShardedDiagnoser bit-identity -----------------------------------------

struct FamilyCase {
  const char* spec;
  unsigned delta;
};

constexpr FamilyCase kShardFamilies[] = {
    {"hypercube 8", 4},
    {"kary_ncube 3 4", 3},
    {"star 6", 4},
};

constexpr ParentRule kDeferredRules[] = {
    ParentRule::kSpread, ParentRule::kLeastSync, ParentRule::kHashSpread};

/// Monolithic expectation vs sharded actuals (table and lazy row modes),
/// over every deferred final rule and the given shard count.
void check_family_at_shards(const std::string& spec, unsigned delta,
                            unsigned shards) {
  const std::shared_ptr<const Topology> topo = make_topology_from_spec(spec);
  const Graph graph = topo->build_graph();
  const std::size_t n = graph.num_nodes();
  const CertifiedPartition partition =
      find_certified_partition(*topo, graph, delta, ParentRule::kSpread);

  for (const ParentRule final_rule : kDeferredRules) {
    DiagnoserOptions options;
    options.final_rule = final_rule;
    Diagnoser mono(graph, partition, options);

    ShardedOptions sharded_options;
    sharded_options.shards = shards;
    sharded_options.threads = 2;
    sharded_options.diagnoser = options;
    ShardedDiagnoser sharded(topo, partition, sharded_options);
    ASSERT_EQ(sharded.plan().num_shards(), shards);

    for (const std::size_t num_faults :
         {std::size_t{0}, std::size_t{1}, std::size_t{delta}}) {
      for (const FaultyBehavior behavior :
           {FaultyBehavior::kRandom, FaultyBehavior::kAntiDiagnostic}) {
        Rng rng(0x5AA7D ^ (num_faults * 977) ^
                static_cast<unsigned>(final_rule));
        const FaultSet faults(n, inject_uniform(n, num_faults, rng));
        const std::string what = spec + "/S=" + std::to_string(shards) +
                                 "/" + to_string(final_rule) + "/faults=" +
                                 std::to_string(num_faults) + "/" +
                                 to_string(behavior);

        const Syndrome syndrome =
            generate_syndrome(graph, faults, behavior, /*seed=*/42);
        const TableOracle oracle(graph, syndrome);
        const DiagnosisResult expected = mono.diagnose(oracle);

        expect_bit_identical(expected, sharded.diagnose(syndrome),
                             what + "/table");
        EXPECT_EQ(sharded.last_stats().shards, shards);
        expect_bit_identical(expected,
                             sharded.diagnose(faults, behavior, /*seed=*/42),
                             what + "/lazy");
      }
    }
  }
}

TEST(ShardedDiagnoser, BitIdenticalAtOneShard) {
  for (const FamilyCase& family : kShardFamilies) {
    SCOPED_TRACE(family.spec);
    check_family_at_shards(family.spec, family.delta, 1);
  }
}

TEST(ShardedDiagnoser, BitIdenticalAtTwoShards) {
  for (const FamilyCase& family : kShardFamilies) {
    SCOPED_TRACE(family.spec);
    check_family_at_shards(family.spec, family.delta, 2);
  }
}

TEST(ShardedDiagnoser, BitIdenticalAtSevenShards) {
  for (const FamilyCase& family : kShardFamilies) {
    SCOPED_TRACE(family.spec);
    check_family_at_shards(family.spec, family.delta, 7);
  }
}

TEST(ShardedDiagnoser, BitIdenticalWithMoreShardsThanComponents) {
  for (const FamilyCase& family : kShardFamilies) {
    SCOPED_TRACE(family.spec);
    const std::shared_ptr<const Topology> topo =
        make_topology_from_spec(family.spec);
    const Graph graph = topo->build_graph();
    const CertifiedPartition partition = find_certified_partition(
        *topo, graph, family.delta, ParentRule::kSpread);
    const unsigned shards = static_cast<unsigned>(std::min<std::size_t>(
        ShardPlan::kMaxShards, partition.plan->num_components() + 3));
    check_family_at_shards(family.spec, family.delta, shards);
  }
}

TEST(ShardedDiagnoser, ClosedFormHaloEngagesOnHypercubePowerOfTwo) {
  const std::shared_ptr<const Topology> topo =
      make_topology_from_spec("hypercube 8");
  const Graph graph = topo->build_graph();
  const CertifiedPartition partition =
      find_certified_partition(*topo, graph, 4, ParentRule::kSpread);
  ShardedOptions options;
  options.shards = 4;
  options.diagnoser.final_rule = ParentRule::kSpread;
  ShardedDiagnoser sharded(topo, partition, options);
  EXPECT_TRUE(sharded.plan().closed_form_halo());
  const DiagnosisResult r =
      sharded.diagnose(FaultSet(graph.num_nodes(), {}),
                       FaultyBehavior::kRandom, 3);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(sharded.last_stats().closed_form_halo);
  EXPECT_GT(sharded.last_stats().max_store_bytes, 0u);
}

TEST(ShardedDiagnoser, RejectsUnshardableOptions) {
  const std::shared_ptr<const Topology> topo =
      make_topology_from_spec("hypercube 6");
  const Graph graph = topo->build_graph();
  const CertifiedPartition partition =
      find_certified_partition(*topo, graph, 4, ParentRule::kSpread);

  {
    // kLeastFirst admits mid-scan: order-serial, never shardable.
    ShardedOptions options;
    options.diagnoser.final_rule = ParentRule::kLeastFirst;
    EXPECT_THROW(ShardedDiagnoser(topo, partition, options),
                 std::invalid_argument);
  }
  {
    // Probe rule must match the partition's calibration rule.
    ShardedOptions options;
    options.diagnoser.rule = ParentRule::kLeastSync;
    EXPECT_THROW(ShardedDiagnoser(topo, partition, options),
                 std::invalid_argument);
  }
  {
    // An explicit delta must agree with the certified bound.
    ShardedOptions options;
    options.diagnoser.delta = partition.delta + 1;
    EXPECT_THROW(ShardedDiagnoser(topo, partition, options),
                 std::invalid_argument);
  }
  EXPECT_THROW(ShardedDiagnoser(nullptr, partition, ShardedOptions{}),
               std::invalid_argument);
}

// ---- Engine routing --------------------------------------------------------

TEST(ShardedDiagnoser, EngineRoutedShardsMatchMonolithicEngine) {
  const std::string spec = "hypercube 8";
  EngineOptions mono_options;
  mono_options.diagnoser.delta = 4;
  mono_options.diagnoser.final_rule = ParentRule::kSpread;
  DiagnosisEngine mono_engine(mono_options);

  EngineOptions sharded_options = mono_options;
  sharded_options.shards = 4;
  sharded_options.threads = 2;
  DiagnosisEngine sharded_engine(sharded_options);

  const std::shared_ptr<const Calibration> cal = mono_engine.calibration(spec);
  const std::size_t n = cal->graph.num_nodes();
  for (const std::size_t num_faults : {std::size_t{0}, std::size_t{4}}) {
    Rng rng(0xE2917 + num_faults);
    const FaultSet faults(n, inject_uniform(n, num_faults, rng));
    const Syndrome syndrome =
        generate_syndrome(cal->graph, faults, FaultyBehavior::kRandom, 9);
    const TableOracle mono_oracle(cal->graph, syndrome);
    const TableOracle sharded_oracle(cal->graph, syndrome);
    const DiagnosisResult expected = mono_engine.diagnose(spec, mono_oracle);
    const DiagnosisResult actual =
        sharded_engine.diagnose(spec, sharded_oracle);
    expect_bit_identical(expected, actual,
                         "engine/faults=" + std::to_string(num_faults));
  }

  // A non-table oracle cannot be re-partitioned: the engine silently stays
  // monolithic rather than failing the request.
  Rng rng(1);
  const FaultSet faults(n, inject_uniform(n, 2, rng));
  const LazyOracle lazy_mono(cal->graph, faults, FaultyBehavior::kRandom, 5);
  const LazyOracle lazy_sharded(cal->graph, faults, FaultyBehavior::kRandom,
                                5);
  expect_bit_identical(mono_engine.diagnose(spec, lazy_mono),
                       sharded_engine.diagnose(spec, lazy_sharded),
                       "engine/lazy-fallback");
}

TEST(ShardedDiagnoser, EngineAutoModeStaysMonolithicBelowThreshold) {
  // shards = 0 is the auto policy; hypercube 6 is far below the node
  // threshold, so the request must route monolithically and still succeed.
  EngineOptions options;
  options.shards = 0;
  options.diagnoser.delta = 4;
  DiagnosisEngine engine(options);
  const std::shared_ptr<const Calibration> cal =
      engine.calibration("hypercube 6");
  const std::size_t n = cal->graph.num_nodes();
  Rng rng(7);
  const FaultSet faults(n, inject_uniform(n, 3, rng));
  const Syndrome syndrome =
      generate_syndrome(cal->graph, faults, FaultyBehavior::kRandom, 2);
  const TableOracle oracle(cal->graph, syndrome);
  const DiagnosisResult result = engine.diagnose("hypercube 6", oracle);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(test::sorted(result.faults), faults.nodes());
}

TEST(ShardedDiagnoser, EngineExplicitShardsPropagateOptionErrors) {
  // Explicit sharding with the (default) kLeastFirst final rule is an
  // option error, and the engine must surface it, not mask it.
  EngineOptions options;
  options.shards = 2;
  options.diagnoser.delta = 4;
  DiagnosisEngine engine(options);
  const std::shared_ptr<const Calibration> cal =
      engine.calibration("hypercube 6");
  const Syndrome syndrome =
      generate_syndrome(cal->graph, FaultSet(cal->graph.num_nodes(), {}),
                        FaultyBehavior::kRandom, 1);
  const TableOracle oracle(cal->graph, syndrome);
  EXPECT_THROW((void)engine.diagnose("hypercube 6", oracle),
               std::invalid_argument);
}

TEST(ShardedDiagnoser, ShardsUsedReportsRoutingAndFallbackVisibly) {
  const std::string spec = "hypercube 8";
  EngineOptions options;
  options.diagnoser.delta = 4;
  options.diagnoser.final_rule = ParentRule::kSpread;
  options.shards = 4;
  options.threads = 2;
  DiagnosisEngine engine(options);
  const std::shared_ptr<const Calibration> cal = engine.calibration(spec);
  const std::size_t n = cal->graph.num_nodes();
  Rng rng(0x51AD);
  const FaultSet faults(n, inject_uniform(n, 2, rng));
  const Syndrome syndrome =
      generate_syndrome(cal->graph, faults, FaultyBehavior::kRandom, 11);

  // A sharded table request names exactly the owner shards it ran on.
  const TableOracle table(cal->graph, syndrome);
  EXPECT_EQ(engine.diagnose(spec, table).shards_used, 4u);

  // A lazy oracle cannot be re-partitioned: the request falls back to the
  // monolithic solve, and the fallback must be visible, never silent.
  const LazyOracle lazy(cal->graph, faults, FaultyBehavior::kRandom, 11);
  EXPECT_EQ(engine.diagnose(spec, lazy).shards_used, 1u);

  // A monolithic engine never claims shards.
  EngineOptions mono_options = options;
  mono_options.shards = 1;
  DiagnosisEngine mono_engine(mono_options);
  const TableOracle mono_table(cal->graph, syndrome);
  EXPECT_EQ(mono_engine.diagnose(spec, mono_table).shards_used, 1u);

  // Auto mode below the node threshold resolves to monolithic — and says so.
  EngineOptions auto_options = options;
  auto_options.shards = 0;
  DiagnosisEngine auto_engine(auto_options);
  const TableOracle auto_table(cal->graph, syndrome);
  EXPECT_EQ(auto_engine.diagnose(spec, auto_table).shards_used, 1u);
}

}  // namespace
}  // namespace mmdiag
