// ImplicitGraph equivalence suite: the closed-form adjacency view must
// answer every GraphView query — degree, the sorted neighbour list,
// neighbor(u, p), neighbor_position (including misses), mirror_position —
// exactly like the materialised CSR graph, for every registry family.
// The CSR invariant (neighbours sorted ascending) is what makes the two
// views interchangeable bit for bit in the solver: position p means the
// same edge in both worlds, so they consult identical syndrome bits.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "graph/implicit_graph.hpp"
#include "test_util.hpp"
#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"

namespace mmdiag {
namespace {

// Small instances of all 14 registry families; the closed-form families
// (hypercube, kary_ncube) plus every generic-fallback family.
const char* const kEveryFamilySpec[] = {
    "hypercube 5",          "crossed_cube 5",
    "twisted_cube 5",       "folded_hypercube 5",
    "enhanced_hypercube 5 2", "augmented_cube 6",
    "shuffle_cube 6",       "twisted_n_cube 5",
    "kary_ncube 2 6",       "augmented_kary_ncube 3 4",
    "star 4",               "nk_star 5 3",
    "pancake 4",            "arrangement 5 3",
};

TEST(ImplicitGraph, MatchesCsrOnEveryFamily) {
  for (const char* spec : kEveryFamilySpec) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const ImplicitGraph implicit(*inst.topo);
    const Graph& csr = inst.graph;

    ASSERT_EQ(implicit.num_nodes(), csr.num_nodes());
    EXPECT_EQ(implicit.max_degree(), csr.max_degree());

    for (Node u = 0; u < csr.num_nodes(); ++u) {
      const auto expected = csr.neighbors(u);
      ASSERT_EQ(implicit.degree(u), csr.degree(u)) << "u=" << u;
      const auto adj = implicit.neighbors(u);
      ASSERT_EQ(adj.size(), expected.size()) << "u=" << u;
      const auto mirrors = implicit.mirror_positions(u);
      for (unsigned p = 0; p < expected.size(); ++p) {
        EXPECT_EQ(adj[p], expected[p]) << "u=" << u << " p=" << p;
        EXPECT_EQ(implicit.neighbor(u, p), expected[p])
            << "u=" << u << " p=" << p;
        EXPECT_EQ(implicit.neighbor_position(u, expected[p]),
                  csr.neighbor_position(u, expected[p]))
            << "u=" << u << " p=" << p;
        EXPECT_EQ(mirrors[p], csr.mirror_position(u, p))
            << "u=" << u << " p=" << p;
        EXPECT_EQ(implicit.mirror_position(u, p), csr.mirror_position(u, p))
            << "u=" << u << " p=" << p;
      }
      // Non-neighbours (u itself is never adjacent to itself in these
      // families) must come back as -1 from both views.
      EXPECT_EQ(implicit.neighbor_position(u, u), -1) << "u=" << u;
      EXPECT_EQ(csr.neighbor_position(u, u), -1) << "u=" << u;
    }
  }
}

TEST(ImplicitGraph, FootprintIsConstantAndTiny) {
  test::Instance small("hypercube 4");
  test::Instance large("hypercube 10");
  const ImplicitGraph a(*small.topo);
  const ImplicitGraph b(*large.topo);
  // O(1): the footprint must not grow with the node count, and must be
  // orders of magnitude below the CSR estimate for any non-toy instance.
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  EXPECT_LT(b.memory_bytes(), std::uint64_t{4096});
  EXPECT_LT(b.memory_bytes(), b.csr_bytes_estimate());
  EXPECT_EQ(b.csr_bytes_estimate(),
            csr_memory_bytes_estimate(large.topo->info().num_nodes,
                                      large.topo->info().degree));
}

// No registry family reaches degree > 64 inside the 32-bit id space, so the
// ceiling is exercised with a synthetic complete graph K_66 (degree 65).
class CompleteTopology final : public Topology {
 public:
  explicit CompleteTopology(unsigned n) : n_(n) {}
  [[nodiscard]] TopologyInfo info() const override {
    TopologyInfo t;
    t.name = "K" + std::to_string(n_);
    t.family = "complete";
    t.num_nodes = n_;
    t.degree = n_ - 1;
    return t;
  }
  void neighbors(Node u, std::vector<Node>& out) const override {
    out.clear();
    for (Node v = 0; v < n_; ++v) {
      if (v != u) out.push_back(v);
    }
  }
  [[nodiscard]] std::string node_label(Node u) const override {
    return std::to_string(u);
  }
  [[nodiscard]] std::vector<std::shared_ptr<const PartitionPlan>>
  partition_plans() const override {
    return {};
  }
  [[nodiscard]] std::vector<unsigned> params() const override { return {n_}; }

 private:
  unsigned n_;
};

TEST(ImplicitGraph, RejectsTopologiesBeyondTheDegreeCeiling) {
  static_assert(ImplicitGraph::kMaxDegree == 64);
  const CompleteTopology ok(65);   // degree 64: exactly at the ceiling
  const CompleteTopology bad(66);  // degree 65: one past it
  EXPECT_NO_THROW((void)ImplicitGraph(ok));
  EXPECT_THROW((void)ImplicitGraph(bad), std::invalid_argument);
}

TEST(ImplicitGraph, GenericFallbacksMatchCsrOnAnUnregisteredFamily) {
  // The complete graph has no closed forms, so every query runs through the
  // Topology enumerate-and-sort fallbacks — checked against its CSR.
  const CompleteTopology topo(12);
  const Graph csr = topo.build_graph();
  const ImplicitGraph implicit(topo);
  for (Node u = 0; u < csr.num_nodes(); ++u) {
    const auto expected = csr.neighbors(u);
    const auto adj = implicit.neighbors(u);
    ASSERT_EQ(adj.size(), expected.size());
    for (unsigned p = 0; p < expected.size(); ++p) {
      EXPECT_EQ(adj[p], expected[p]);
      EXPECT_EQ(implicit.mirror_position(u, p), csr.mirror_position(u, p));
    }
  }
}

// Direct closed-form spot checks, independent of the CSR cross-check above:
// the hypercube's static API on hand-computed expectations.
TEST(ImplicitGraph, HypercubeStaticFormulas) {
  // u = 2 = 0b0010 in Q4: ascending neighbours are 0 (flip bit 1, down),
  // 3 (flip bit 0, up), 6 (flip bit 2, up), 10 (flip bit 3, up).
  Node adj[64];
  ASSERT_EQ(Hypercube::sorted_neighbors_of(4, 2, adj), 4u);
  EXPECT_EQ(adj[0], 0u);
  EXPECT_EQ(adj[1], 3u);
  EXPECT_EQ(adj[2], 6u);
  EXPECT_EQ(adj[3], 10u);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(Hypercube::neighbor_of(4, 2, p), adj[p]) << "p=" << p;
    EXPECT_EQ(Hypercube::position_of(4, 2, adj[p]), static_cast<int>(p));
  }
  EXPECT_EQ(Hypercube::position_of(4, 2, 7), -1);  // not a neighbour
}

TEST(ImplicitGraph, KAryNCubeStaticFormulas) {
  // k=4, n=2, u = 6 = (1,2) in (dim1,dim0): neighbours are (1,1)=5,
  // (1,3)=7, (0,2)=2, (2,2)=10 — sorted: 2, 5, 7, 10.
  Node adj[64];
  ASSERT_EQ(KAryNCube::sorted_neighbors_of(2, 4, 6, adj), 4u);
  EXPECT_EQ(adj[0], 2u);
  EXPECT_EQ(adj[1], 5u);
  EXPECT_EQ(adj[2], 7u);
  EXPECT_EQ(adj[3], 10u);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(KAryNCube::neighbor_of(2, 4, 6, p), adj[p]) << "p=" << p;
    EXPECT_EQ(KAryNCube::position_of(2, 4, 6, adj[p]), static_cast<int>(p));
  }
  EXPECT_EQ(KAryNCube::position_of(2, 4, 6, 0), -1);
}

TEST(ImplicitGraph, BothViewsSatisfyTheConcept) {
  static_assert(GraphView<Graph>);
  static_assert(GraphView<ImplicitGraph>);
  SUCCEED();
}

}  // namespace
}  // namespace mmdiag
