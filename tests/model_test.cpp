// The DiagnosisModel axis below the solvers: enum name tables, directed
// (PMC/BGM) test semantics — asymmetric outcomes, self-test exclusion,
// intermittent faults at degree 1 and degree 64 — plus the model
// provenance lines of the .repro and syndrome file formats.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzz_case.hpp"
#include "graph/builder.hpp"
#include "io/syndrome_io.hpp"
#include "mm/behavior.hpp"
#include "mm/directed_oracle.hpp"
#include "mm/directed_syndrome.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "topology/registry.hpp"
#include "util/enum_names.hpp"

namespace mmdiag {
namespace {

// --------------------------------------------------------------------------
// Enum name tables (the one-header satellite: every consumer shares these).
// --------------------------------------------------------------------------

TEST(ModelNames, RoundTripAndShorthands) {
  for (const DiagnosisModel model : kAllDiagnosisModels) {
    EXPECT_EQ(diagnosis_model_from_string(diagnosis_model_to_string(model)),
              model);
  }
  EXPECT_EQ(diagnosis_model_from_string("mm"), DiagnosisModel::kMMStar);
  EXPECT_EQ(diagnosis_model_from_string("mm_star"), DiagnosisModel::kMMStar);
  EXPECT_THROW(static_cast<void>(diagnosis_model_from_string("pcm")),
               std::invalid_argument);
  EXPECT_FALSE(is_directed_model(DiagnosisModel::kMMStar));
  EXPECT_TRUE(is_directed_model(DiagnosisModel::kPMC));
  EXPECT_TRUE(is_directed_model(DiagnosisModel::kBGM));
}

TEST(ModelNames, GraphModeAndRuleShareTheHeader) {
  for (const GraphMode mode : kAllGraphModes) {
    EXPECT_EQ(graph_mode_from_string(graph_mode_to_string(mode)), mode);
  }
  for (const ParentRule rule : kAllParentRules) {
    EXPECT_EQ(parent_rule_from_string(parent_rule_to_string(rule)), rule);
  }
  EXPECT_EQ(parent_rule_from_string("least_first"), ParentRule::kLeastFirst);
}

// --------------------------------------------------------------------------
// Directed test semantics.
// --------------------------------------------------------------------------

TEST(DirectedSemantics, HealthyTesterReportsTheTruth) {
  for (const DiagnosisModel model :
       {DiagnosisModel::kPMC, DiagnosisModel::kBGM}) {
    for (const FaultyBehavior behavior : kAllFaultyBehaviors) {
      EXPECT_FALSE(directed_test_result(model, behavior, 7, 0, 1, false,
                                        false));
      EXPECT_TRUE(directed_test_result(model, behavior, 7, 0, 1, false,
                                       true));
    }
  }
}

TEST(DirectedSemantics, BgmForcesFaultyTestsFaultyToOne) {
  // Asymmetric invalidation: the behaviour is never even consulted, so the
  // all-zero liar still reports 1 — while under PMC it lies freely.
  for (const FaultyBehavior behavior : kAllFaultyBehaviors) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      EXPECT_TRUE(directed_test_result(DiagnosisModel::kBGM, behavior, seed,
                                       2, 3, true, true));
    }
  }
  EXPECT_FALSE(directed_test_result(DiagnosisModel::kPMC,
                                    FaultyBehavior::kAllZero, 7, 2, 3, true,
                                    true));
}

TEST(DirectedSemantics, FaultyTesterBehaviours) {
  // PMC, faulty tester u on a healthy subject v: all-one alarms, all-zero
  // stays silent, anti inverts what a healthy tester would have said.
  EXPECT_TRUE(directed_test_result(DiagnosisModel::kPMC,
                                   FaultyBehavior::kAllOne, 7, 0, 1, true,
                                   false));
  EXPECT_FALSE(directed_test_result(DiagnosisModel::kPMC,
                                    FaultyBehavior::kAllZero, 7, 0, 1, true,
                                    false));
  EXPECT_TRUE(directed_test_result(DiagnosisModel::kPMC,
                                   FaultyBehavior::kAntiDiagnostic, 7, 0, 1,
                                   true, false));
  EXPECT_FALSE(directed_test_result(DiagnosisModel::kPMC,
                                    FaultyBehavior::kAntiDiagnostic, 7, 0, 1,
                                    true, true));
}

TEST(DirectedSemantics, RandomStreamIsOrderedPairAsymmetric) {
  // The intermittent (kRandom) stream hashes the *ordered* pair, so the two
  // arcs of one edge between two faulty nodes are independent draws under
  // PMC; some seed must produce an asymmetric edge (and the draw must be
  // repeatable).
  bool found_asymmetry = false;
  for (std::uint64_t seed = 0; seed < 64 && !found_asymmetry; ++seed) {
    const bool uv = directed_test_result(
        DiagnosisModel::kPMC, FaultyBehavior::kRandom, seed, 0, 1, true, true);
    const bool vu = directed_test_result(
        DiagnosisModel::kPMC, FaultyBehavior::kRandom, seed, 1, 0, true, true);
    EXPECT_EQ(uv, directed_test_result(DiagnosisModel::kPMC,
                                       FaultyBehavior::kRandom, seed, 0, 1,
                                       true, true));
    found_asymmetry = uv != vu;
  }
  EXPECT_TRUE(found_asymmetry);
}

// --------------------------------------------------------------------------
// Syndrome generation: self-test exclusion and the degree-1 / degree-64
// edge cases on a 64-leaf hub.
// --------------------------------------------------------------------------

Graph hub_graph() {
  std::vector<std::pair<Node, Node>> edges;
  for (Node leaf = 1; leaf <= 64; ++leaf) edges.emplace_back(0, leaf);
  return build_graph_from_edges(65, edges);
}

TEST(DirectedSyndromes, SelfTestsHaveNoSlotByConstruction) {
  const Graph g = hub_graph();
  const FaultSet faults(g.num_nodes(), {0});
  const DirectedSyndrome s = generate_directed_syndrome(
      g, faults, DiagnosisModel::kPMC, FaultyBehavior::kAllOne, 1);
  // One bit per directed arc and nothing else: sum of degrees = 2|E| = 128.
  EXPECT_EQ(s.total_tests(), 128u);
  EXPECT_THROW(static_cast<void>(generate_directed_syndrome(
                   g, faults, DiagnosisModel::kMMStar,
                   FaultyBehavior::kAllOne, 1)),
               std::invalid_argument);
}

TEST(DirectedSyndromes, HubAtDegree64AndLeavesAtDegree1) {
  const Graph g = hub_graph();
  ASSERT_EQ(g.degree(0), 64u);
  ASSERT_EQ(g.degree(1), 1u);
  const FaultSet faults(g.num_nodes(), {0, 1, 2});
  for (const DiagnosisModel model :
       {DiagnosisModel::kPMC, DiagnosisModel::kBGM}) {
    for (const FaultyBehavior behavior : kAllFaultyBehaviors) {
      SCOPED_TRACE(diagnosis_model_to_string(model) + "/" +
                   to_string(behavior));
      const DirectedSyndrome s =
          generate_directed_syndrome(g, faults, model, behavior, 9);
      // Healthy leaves (degree 1) test the faulty hub: always 1.
      for (Node leaf = 3; leaf <= 64; ++leaf) {
        EXPECT_TRUE(s.test(leaf, 0));
        EXPECT_EQ(s.row_bits(leaf), 1u);
      }
      // BGM: the faulty leaves test the faulty hub, forced to 1 no matter
      // the behaviour.
      if (model == DiagnosisModel::kBGM) {
        EXPECT_TRUE(s.test(1, 0));
        EXPECT_TRUE(s.test(2, 0));
      }
      // The hub's full 64-wide run packs into one word, agreeing bit by
      // bit with the per-arc reads.
      const std::uint64_t row = s.row_bits(0);
      for (unsigned p = 0; p < 64; ++p) {
        EXPECT_EQ((row >> p) & 1u, s.test(0, p) ? 1u : 0u);
      }
      // Table and lazy oracles present the same syndrome.
      const DirectedTableOracle table(g, s, model);
      const DirectedLazyOracle lazy(g, faults, model, behavior, 9);
      for (Node u = 0; u < g.num_nodes(); ++u) {
        for (unsigned p = 0; p < g.degree(u); ++p) {
          EXPECT_EQ(table.test(u, p), lazy.test(u, p));
        }
      }
    }
  }
}

TEST(DirectedSyndromes, IntermittentDrawsAreRepeatable) {
  const Graph g = hub_graph();
  const FaultSet faults(g.num_nodes(), {0, 5});
  for (const DiagnosisModel model :
       {DiagnosisModel::kPMC, DiagnosisModel::kBGM}) {
    const DirectedSyndrome a = generate_directed_syndrome(
        g, faults, model, FaultyBehavior::kRandom, 42);
    const DirectedSyndrome b = generate_directed_syndrome(
        g, faults, model, FaultyBehavior::kRandom, 42);
    EXPECT_EQ(a.row_bits(0), b.row_bits(0));
    EXPECT_EQ(a.ones(), b.ones());
  }
}

// --------------------------------------------------------------------------
// .repro model provenance line.
// --------------------------------------------------------------------------

TEST(ReproModelLine, RoundTripsEveryModel) {
  for (const DiagnosisModel model : kAllDiagnosisModels) {
    FuzzCase c;
    c.spec = "hypercube 5";
    c.delta = 3;
    c.pattern = InjectionPattern::kClustered;
    c.inject_seed = 11;
    c.behavior = FaultyBehavior::kAntiDiagnostic;
    c.behavior_seed = 13;
    c.rule = ParentRule::kLeastFirst;
    c.model = model;
    c.faults = {3, 17, 21};
    std::stringstream ss;
    write_repro(ss, c);
    const FuzzCase back = read_repro(ss);
    EXPECT_EQ(back.model, model);
    EXPECT_EQ(back.spec, c.spec);
    EXPECT_EQ(back.rule, c.rule);
    EXPECT_EQ(back.faults, c.faults);
  }
}

TEST(ReproModelLine, OptionalOnReadDefaultingToMmStar) {
  // A pre-model v1 repro (with and without the also-optional rule line)
  // must keep replaying as an MM* case.
  const std::string without_model =
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 2\nrule spread\n"
      "faults 0 7\nend\n";
  std::istringstream a(without_model);
  EXPECT_EQ(read_repro(a).model, DiagnosisModel::kMMStar);

  const std::string without_rule_or_model =
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 2\nfaults 0 7\nend\n";
  std::istringstream b(without_rule_or_model);
  const FuzzCase back = read_repro(b);
  EXPECT_EQ(back.model, DiagnosisModel::kMMStar);
  EXPECT_EQ(back.rule, ParentRule::kSpread);

  const std::string bad_model =
      "mmdiag-repro v1\nspec star 4\ndelta 3\npattern uniform\n"
      "inject-seed 1\nbehavior random\nbehavior-seed 2\nrule spread\n"
      "model pcm\nfaults 0 7\nend\n";
  std::istringstream c(bad_model);
  EXPECT_THROW(static_cast<void>(read_repro(c)), std::runtime_error);
}

// --------------------------------------------------------------------------
// Syndrome file model header.
// --------------------------------------------------------------------------

TEST(SyndromeFileModel, DirectedRoundTripPerModel) {
  for (const DiagnosisModel model :
       {DiagnosisModel::kPMC, DiagnosisModel::kBGM}) {
    std::stringstream ss;
    // The writer needs a registry spec only for the header; the reader
    // rebuilds adjacency from it, so round-trip through a real spec.
    const Graph q4 = make_topology_from_spec("hypercube 4")->build_graph();
    const DirectedSyndrome qs = generate_directed_syndrome(
        q4, FaultSet(q4.num_nodes(), {1, 6}), model,
        FaultyBehavior::kAntiDiagnostic, 5);
    write_directed_syndrome(ss, "hypercube 4", model, q4, qs);

    std::istringstream peek_stream(ss.str());
    const SyndromeFileHeader header = peek_syndrome_header(peek_stream);
    EXPECT_EQ(header.model, model);
    EXPECT_EQ(header.spec, "hypercube 4");

    const LoadedDirectedSyndrome back = read_directed_syndrome(ss);
    EXPECT_EQ(back.model, model);
    ASSERT_EQ(back.graph.num_nodes(), q4.num_nodes());
    for (Node u = 0; u < q4.num_nodes(); ++u) {
      EXPECT_EQ(back.syndrome.row_bits(u), qs.row_bits(u));
    }
  }
}

TEST(SyndromeFileModel, ReadersRejectTheWrongFamily) {
  const Graph q4 = make_topology_from_spec("hypercube 4")->build_graph();
  const DirectedSyndrome qs = generate_directed_syndrome(
      q4, FaultSet(q4.num_nodes(), {}), DiagnosisModel::kPMC,
      FaultyBehavior::kRandom, 1);
  std::stringstream directed_file;
  write_directed_syndrome(directed_file, "hypercube 4", DiagnosisModel::kPMC,
                          q4, qs);
  EXPECT_THROW(static_cast<void>(read_syndrome(directed_file)),
               std::runtime_error);

  // An MM* file — no model line at all — is rejected by the directed
  // reader and defaults to mm-star under the peeker.
  const std::string mm_header =
      "mmdiag-syndrome v1\ntopology hypercube 4\nnode 0 000000\nend\n";
  std::istringstream peek_stream(mm_header);
  EXPECT_EQ(peek_syndrome_header(peek_stream).model, DiagnosisModel::kMMStar);
  std::istringstream mm_file(mm_header);
  EXPECT_THROW(static_cast<void>(read_directed_syndrome(mm_file)),
               std::runtime_error);

  std::stringstream out;
  EXPECT_THROW(
      write_directed_syndrome(out, "hypercube 4", DiagnosisModel::kMMStar, q4,
                              qs),
      std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
