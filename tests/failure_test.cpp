// Failure injection: behaviour beyond the |F| <= δ promise, unsupported
// parameter regimes, and API misuse must fail loudly, never silently lie.
#include <gtest/gtest.h>

#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "core/verifier.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(FailureInjection, OverloadedFaultCountNeverSilentlyWrong) {
  // With |F| > delta the guarantee is void; the verified pipeline must
  // either still produce the exact answer or report failure — never a wrong
  // answer marked success.
  test::Instance inst("hypercube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(6);
  int failures = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const unsigned count = 8 + static_cast<unsigned>(trial % 5);  // > delta=7
    const FaultSet faults(128, inject_uniform(128, count, rng));
    const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const auto result = diagnose_and_verify(diagnoser, oracle);
    if (result.success) {
      EXPECT_EQ(result.faults, faults.nodes()) << "trial " << trial;
    } else {
      ++failures;
      EXPECT_FALSE(result.failure_reason.empty());
    }
  }
  // Massive overloads must be detectable at least sometimes.
  const FaultSet heavy(128, inject_uniform(128, 60, rng));
  const LazyOracle oracle(inst.graph, heavy, FaultyBehavior::kAllZero, 1);
  const auto result = diagnose_and_verify(diagnoser, oracle);
  EXPECT_FALSE(result.success);
}

TEST(FailureInjection, AllFaultyComponentsExhaustProbes) {
  // Place faults so that delta+1 = 8 probed components each contain one:
  // no probe can certify and the driver reports failure honestly.
  test::Instance inst("hypercube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  const PartitionPlan& plan = *diagnoser.partition().plan;
  ASSERT_GE(plan.num_components(), 8u);
  std::vector<Node> faults_vec;
  for (std::uint32_t c = 0; c < 8; ++c) {
    faults_vec.push_back(plan.seed_of(c));  // hit every probed seed
  }
  const FaultSet faults(128, faults_vec);  // |F| = 8 > delta = 7
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllOne, 0);
  const auto result = diagnoser.diagnose(oracle);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure_reason.find("probes"), std::string::npos);
}

TEST(FailureInjection, FailedDiagnosisStillReportsItsLookupCost) {
  // Regression guard for the accounting contract: diagnose() resets the
  // oracle counter, so every return path — including early failures — must
  // read it back, or a failed diagnosis would claim its probes were free.
  test::Instance inst("hypercube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  const PartitionPlan& plan = *diagnoser.partition().plan;
  std::vector<Node> faults_vec;
  for (std::uint32_t c = 0; c < 8; ++c) faults_vec.push_back(plan.seed_of(c));
  const FaultSet faults(128, faults_vec);  // undiagnosable: |F| = 8 > delta
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllOne, 0);

  const auto result = diagnoser.diagnose(oracle);
  ASSERT_FALSE(result.success);
  EXPECT_GT(result.lookups, 0u) << "failure path dropped the probe cost";
  EXPECT_EQ(result.lookups, oracle.lookups());
  EXPECT_EQ(result.probes, 8u);
}

TEST(FailureInjection, UnsupportedFamiliesThrowAtConstruction) {
  {
    test::Instance inst("nk_star 6 2");  // clique components (DESIGN §4.3)
    EXPECT_THROW((void)Diagnoser(*inst.topo, inst.graph), DiagnosisUnsupportedError);
  }
  {
    test::Instance inst("hypercube 5");  // too few certifiable components
    EXPECT_THROW((void)Diagnoser(*inst.topo, inst.graph), DiagnosisUnsupportedError);
  }
}

TEST(FailureInjection, DeltaZeroDefaultRejected) {
  // kary_ncube (3,3) is on the paper's exclusion list: diagnosability
  // unknown, so the default-delta constructor must refuse.
  test::Instance inst("kary_ncube 3 3");
  EXPECT_EQ(inst.topo->default_fault_bound(), 0u);
  EXPECT_THROW((void)Diagnoser(*inst.topo, inst.graph), DiagnosisUnsupportedError);
}

TEST(FailureInjection, CorruptSyndromeCaughtByVerification) {
  // Flip one healthy tester's bit after generation: the claimed diagnosis
  // may shift; verification against the corrupted syndrome must flag any
  // inconsistency rather than trust the driver.
  test::Instance inst("hypercube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(9);
  const FaultSet faults(128, inject_uniform(128, 4, rng));
  Syndrome syndrome =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 2);
  // Corrupt: healthy node 0 reporting 1 about two healthy neighbours.
  Node healthy = 0;
  while (faults.is_faulty(healthy)) ++healthy;
  syndrome.set_test(healthy, 0, 1, !syndrome.test(healthy, 0, 1));
  const TableOracle oracle(inst.graph, syndrome);
  const auto result = diagnose_and_verify(diagnoser, oracle);
  if (result.success) {
    // Only acceptable if the corruption happened to mimic a consistent
    // configuration — then the answer must still be a consistent set.
    EXPECT_TRUE(syndrome_consistent(inst.graph, oracle,
                                    FaultSet(128, result.faults)));
  } else {
    EXPECT_FALSE(result.failure_reason.empty());
  }
}

TEST(FailureInjection, BadSeedsAndRanges) {
  test::Instance inst("hypercube 7");
  const FaultFreeOracle oracle(inst.graph);
  SetBuilder builder(inst.graph);
  EXPECT_THROW((void)builder.run(oracle, 4096, 7), std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
