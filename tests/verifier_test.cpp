// Post-hoc syndrome-consistency verification.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(Verifier, TrueFaultSetIsConsistent) {
  test::Instance inst("hypercube 6");
  Rng rng(1);
  for (const auto behavior : kAllFaultyBehaviors) {
    const FaultSet faults(64, inject_uniform(64, 5, rng));
    const LazyOracle oracle(inst.graph, faults, behavior, 3);
    EXPECT_TRUE(syndrome_consistent(inst.graph, oracle, faults))
        << to_string(behavior);
  }
}

TEST(Verifier, WrongFaultSetsAreInconsistent) {
  test::Instance inst("hypercube 6");
  Rng rng(2);
  const FaultSet faults(64, inject_uniform(64, 5, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 9);
  // Missing one fault.
  auto missing = faults.nodes();
  missing.pop_back();
  EXPECT_FALSE(syndrome_consistent(inst.graph, oracle, FaultSet(64, missing)));
  // One extra healthy node blamed: a healthy tester adjacent to it reports 0
  // where the claim predicts 1.
  auto extra = faults.nodes();
  Node innocent = 0;
  while (faults.is_faulty(innocent)) ++innocent;
  extra.push_back(innocent);
  EXPECT_FALSE(syndrome_consistent(inst.graph, oracle, FaultSet(64, extra)));
  // The empty claim is inconsistent whenever faults exist.
  EXPECT_FALSE(syndrome_consistent(inst.graph, oracle, FaultSet(64, {})));
}

TEST(Verifier, EmptyClaimConsistentOnFaultFreeSyndrome) {
  test::Instance inst("star 4");
  const FaultSet none(24, {});
  const LazyOracle oracle(inst.graph, none, FaultyBehavior::kRandom, 0);
  EXPECT_TRUE(syndrome_consistent(inst.graph, oracle, none));
}

TEST(Verifier, DiagnoseAndVerifyUpgradesHonestRuns) {
  test::Instance inst("hypercube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(3);
  const FaultSet faults(128, inject_uniform(128, 7, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllOne, 4);
  const auto result = diagnose_and_verify(diagnoser, oracle);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.faults, faults.nodes());
}

TEST(Verifier, SurvivesAdversarialBehaviorSweep) {
  // Verification must agree with plain diagnosis on every behaviour/count.
  test::Instance inst("crossed_cube 7");
  Diagnoser diagnoser(*inst.topo, inst.graph);
  Rng rng(5);
  for (unsigned count = 0; count <= 7; count += 3) {
    for (const auto behavior : kAllFaultyBehaviors) {
      const FaultSet faults(128, inject_uniform(128, count, rng));
      const LazyOracle oracle(inst.graph, faults, behavior, count);
      const auto result = diagnose_and_verify(diagnoser, oracle);
      ASSERT_TRUE(result.success) << to_string(behavior);
      EXPECT_EQ(result.faults, faults.nodes());
    }
  }
}

}  // namespace
}  // namespace mmdiag
