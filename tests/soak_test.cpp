// Randomised soak: many seeds, mixed fault counts and behaviours, three
// algorithms cross-checked on the same syndromes. Catches rule- or
// seed-dependent regressions the targeted suites might miss.
#include <gtest/gtest.h>

#include "baselines/exact_solver.hpp"
#include "core/diagnoser.hpp"
#include "distributed/protocol.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

class Soak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soak, DriverExactAndDistributedAgreeOnQ7) {
  const std::uint64_t seed = GetParam();
  test::Instance inst("hypercube 7");
  Diagnoser driver(*inst.topo, inst.graph);
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    const auto count = rng.below(8);  // 0..7
    const auto behavior = kAllFaultyBehaviors[rng.below(4)];
    const FaultSet faults(128, inject_uniform(128, count, rng));
    const LazyOracle o1(inst.graph, faults, behavior, seed ^ trial);
    const LazyOracle o2(inst.graph, faults, behavior, seed ^ trial);
    const LazyOracle o3(inst.graph, faults, behavior, seed ^ trial);

    const auto from_driver = driver.diagnose(o1);
    ASSERT_TRUE(from_driver.success) << from_driver.failure_reason;
    ASSERT_EQ(from_driver.faults, faults.nodes())
        << "seed " << seed << " trial " << trial << " "
        << to_string(behavior);

    ExactSolver solver(inst.graph, o2, 7);
    const auto from_solver = solver.diagnose();
    ASSERT_TRUE(from_solver.success);
    EXPECT_EQ(from_solver.faults, faults.nodes());

    const auto from_net = run_distributed_diagnosis(*inst.topo, inst.graph, o3);
    ASSERT_TRUE(from_net.success) << from_net.failure_reason;
    EXPECT_EQ(from_net.faults, faults.nodes());
  }
}

TEST_P(Soak, MixedFamiliesRandomisedRecovery) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 1);
  for (const char* spec :
       {"crossed_cube 7", "kary_ncube 2 7", "nk_star 6 3", "pancake 5"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    Diagnoser driver(*inst.topo, inst.graph);
    const unsigned delta = driver.delta();
    for (int trial = 0; trial < 3; ++trial) {
      const auto count = rng.below(delta + 1);
      const auto behavior = kAllFaultyBehaviors[rng.below(4)];
      const FaultSet faults(inst.graph.num_nodes(),
                            inject_uniform(inst.graph.num_nodes(), count, rng));
      const LazyOracle oracle(inst.graph, faults, behavior, seed + trial);
      const auto result = driver.diagnose(oracle);
      ASSERT_TRUE(result.success)
          << result.failure_reason << " (seed " << seed << ")";
      EXPECT_EQ(result.faults, faults.nodes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace mmdiag
