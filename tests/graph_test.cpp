#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"

namespace mmdiag {
namespace {

Graph path_graph(std::size_t n) {
  std::vector<std::pair<Node, Node>> edges;
  for (Node i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return build_graph_from_edges(n, edges);
}

Graph cycle_graph(std::size_t n) {
  std::vector<std::pair<Node, Node>> edges;
  for (Node i = 0; i < n; ++i) edges.emplace_back(i, static_cast<Node>((i + 1) % n));
  return build_graph_from_edges(n, edges);
}

TEST(GraphBuilder, BasicCsr) {
  const Graph g = build_graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 2u);
  const auto adj0 = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(adj0.begin(), adj0.end()));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.neighbor_position(0, 2), 1);  // adj(0) = {1,2,3}
  EXPECT_EQ(g.neighbor_position(1, 3), -1);
}

TEST(GraphBuilder, EmptyGraphAdjacencyIsWellDefined) {
  // Regression: neighbors()/degree() used to read offsets_[u + 1] even when
  // no offsets exist, so any query on a default-constructed Graph was an
  // out-of-range read.
  const Graph def;
  EXPECT_EQ(def.num_nodes(), 0u);
  EXPECT_EQ(def.num_edges(), 0u);
  EXPECT_TRUE(def.neighbors(0).empty());
  EXPECT_EQ(def.degree(0), 0u);
  EXPECT_EQ(def.neighbor_position(0, 1), -1);
  EXPECT_FALSE(def.has_edge(0, 1));
  EXPECT_EQ(def.max_degree(), 0u);
  EXPECT_EQ(def.min_degree(), 0u);

  // The explicit zero-node CSR behaves identically.
  const Graph csr(std::vector<EdgeIndex>{0}, std::vector<Node>{});
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_TRUE(csr.neighbors(0).empty());
  EXPECT_EQ(csr.degree(0), 0u);

  // And the zero-node builder path plus the traversals over it.
  const Graph built = build_graph_from_edges(0, {});
  EXPECT_EQ(built.num_nodes(), 0u);
  EXPECT_TRUE(is_connected(built));  // vacuously
  EXPECT_TRUE(bfs_distances(built, 0).empty());
  EXPECT_EQ(connected_components(built).count, 0u);
  EXPECT_EQ(diameter(built), 0u);
}

TEST(GraphBuilder, RejectsAsymmetricOrOutOfRangeCsr) {
  // The raw CSR constructor must reject what the edge/generator builders
  // already reject: the diagnosis hot path trusts the precomputed mirror
  // table (Graph::mirror_position) where the old neighbor_position search
  // failed safely, so an asymmetric adjacency cannot be allowed to build.
  EXPECT_THROW((void)Graph(std::vector<EdgeIndex>{0, 1, 1},
                           std::vector<Node>{1}),
               std::invalid_argument);
  EXPECT_THROW((void)Graph(std::vector<EdgeIndex>{0, 1},
                           std::vector<Node>{5}),
               std::invalid_argument);
}

TEST(GraphBuilder, MirrorPositionsInvertAdjacency) {
  const Graph g = build_graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  for (Node u = 0; u < 4; ++u) {
    const auto adj = g.neighbors(u);
    for (unsigned p = 0; p < adj.size(); ++p) {
      EXPECT_EQ(static_cast<int>(g.mirror_position(u, p)),
                g.neighbor_position(adj[p], u))
          << "u=" << u << " p=" << p;
    }
  }
}

TEST(GraphBuilder, RejectsSelfLoopsAndDuplicates) {
  EXPECT_THROW((void)build_graph_from_edges(3, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW((void)build_graph_from_edges(3, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW((void)build_graph_from_edges(2, {{0, 5}}), std::invalid_argument);
}

TEST(GraphBuilder, GeneratorValidatesSymmetry) {
  // Asymmetric generator: 0 -> 1 but 1 -> {}.
  auto bad = [](Node u, std::vector<Node>& out) {
    if (u == 0) out.push_back(1);
  };
  EXPECT_THROW((void)build_graph_from_generator(2, bad), std::logic_error);
}

TEST(GraphBuilder, GeneratorBuildsCycle) {
  auto gen = [](Node u, std::vector<Node>& out) {
    out.push_back((u + 1) % 6);
    out.push_back((u + 5) % 6);
  };
  const Graph g = build_graph_from_generator(6, gen);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Node v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Traversal, BfsDistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (Node v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Traversal, ComponentsOnDisconnected) {
  const Graph g = build_graph_from_edges(5, {{0, 1}, {2, 3}});
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_EQ(comps.id[2], comps.id[3]);
  EXPECT_NE(comps.id[0], comps.id[2]);
  EXPECT_NE(comps.id[0], comps.id[4]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(path_graph(4)));
}

TEST(Traversal, InducedSubgraphConnected) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(induced_subgraph_connected(g, {0, 1, 2}));
  EXPECT_FALSE(induced_subgraph_connected(g, {0, 2, 4}));
  EXPECT_TRUE(induced_subgraph_connected(g, {3}));
}

TEST(Traversal, DiameterAndEccentricity) {
  EXPECT_EQ(diameter(path_graph(5)), 4u);
  EXPECT_EQ(diameter(cycle_graph(6)), 3u);
  EXPECT_EQ(eccentricity(path_graph(5), 2), 2u);
  EXPECT_THROW((void)eccentricity(build_graph_from_edges(3, {{0, 1}}), 0),
               std::logic_error);
}

TEST(Dot, WritesNodesEdgesAndStyles) {
  const Graph g = cycle_graph(4);
  DotStyle style;
  style.highlighted = {2};
  style.bold_edges = {{0, 1}};
  style.label = [](Node v) { return "v" + std::to_string(v); };
  std::ostringstream os;
  write_dot(os, g, style);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph G {"), std::string::npos);
  EXPECT_NE(out.find("label=\"v2\""), std::string::npos);
  EXPECT_NE(out.find("fillcolor"), std::string::npos);
  EXPECT_NE(out.find("penwidth"), std::string::npos);
  // Each undirected edge appears once.
  EXPECT_EQ(std::count(out.begin(), out.end(), '-') % 2, 0);
}

}  // namespace
}  // namespace mmdiag
