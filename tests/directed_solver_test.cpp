// The directed (PMC/BGM) solver stack: DirectedDiagnoser vs the
// DirectedExactSolver ground truth across models, behaviours and both
// fault regimes; the BGM local-diagnosis rules (soundness + the
// neighbourhood look-up bound); and the engine integration — model-tagged
// cache entries, diagnose_directed, the local fast path, and serve()'s
// directed routing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "baselines/directed_exact.hpp"
#include "core/directed_diagnoser.hpp"
#include "engine/calibration.hpp"
#include "engine/engine.hpp"
#include "mm/directed_oracle.hpp"
#include "mm/directed_syndrome.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

using test::Instance;

constexpr DiagnosisModel kDirectedModels[] = {DiagnosisModel::kPMC,
                                              DiagnosisModel::kBGM};

/// The BGM local rules read at most every arc touching u's closed
/// neighbourhood: u's incoming run, u's outgoing run, and each
/// neighbour's other incoming arcs.
std::uint64_t local_lookup_bound(const Graph& g, Node u) {
  std::uint64_t bound = 2 * std::uint64_t{g.degree(u)};
  for (const Node v : g.neighbors(u)) bound += g.degree(v) - 1;
  return bound;
}

TEST(DirectedDiagnoser, AgreesWithExactSolverEverywhere) {
  // The driver's deductions hold in every consistent candidate and its
  // residue search is exhaustive, so it must agree with the exact solver's
  // success/faults/failure_reason verbatim — within the promise and beyond
  // it, for every behaviour, on every model.
  for (const std::string spec : {"hypercube 4", "star 4", "crossed_cube 4"}) {
    const Instance inst(spec);
    const unsigned delta = inst.topo->default_fault_bound();
    for (const DiagnosisModel model : kDirectedModels) {
      DirectedDiagnoser driver(inst.graph, delta);
      for (const FaultyBehavior behavior : kAllFaultyBehaviors) {
        for (std::size_t count = 0; count <= delta + 2; ++count) {
          for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            SCOPED_TRACE(spec + " " + diagnosis_model_to_string(model) + "/" +
                         to_string(behavior) + " count " +
                         std::to_string(count) + " seed " +
                         std::to_string(seed));
            Rng rng(seed * 977 + count);
            const FaultSet faults(
                inst.graph.num_nodes(),
                inject_uniform(inst.graph.num_nodes(), count, rng));
            const DirectedLazyOracle oracle(inst.graph, faults, model,
                                            behavior, seed);
            DirectedExactSolver exact(inst.graph, oracle, delta);
            const DiagnosisResult truth = exact.diagnose();
            const DiagnosisResult got = driver.diagnose(oracle);
            EXPECT_EQ(got.success, truth.success);
            EXPECT_EQ(got.faults, truth.faults);
            EXPECT_EQ(got.failure_reason, truth.failure_reason);
            // Both read the complete syndrome, one look-up per arc.
            EXPECT_EQ(got.lookups, truth.lookups);
            // Within the promise a unique answer must be the injected set.
            if (count <= delta && got.success) {
              EXPECT_EQ(got.faults, test::sorted(faults.nodes()));
            }
          }
        }
      }
    }
  }
}

TEST(DirectedDiagnoser, FaultFreeSystemDiagnosesEmpty) {
  const Instance inst("hypercube 4");
  DirectedDiagnoser driver(inst.graph, inst.topo->default_fault_bound());
  for (const DiagnosisModel model : kDirectedModels) {
    const FaultSet none(inst.graph.num_nodes(), {});
    const DirectedLazyOracle oracle(inst.graph, none, model,
                                    FaultyBehavior::kRandom, 1);
    const DiagnosisResult r = driver.diagnose(oracle);
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(r.faults.empty());
  }
}

TEST(DirectedDiagnoser, GuardsRejectMisuse) {
  const Instance inst("hypercube 4");
  const Instance small("star 4");
  const FaultSet faults(inst.graph.num_nodes(), {1});
  // MM* oracles have no business here (and vice versa for Diagnoser).
  const DirectedLazyOracle mm_tagged(inst.graph, faults,
                                     DiagnosisModel::kMMStar,
                                     FaultyBehavior::kAllZero, 1);
  DirectedDiagnoser driver(inst.graph, 4);
  EXPECT_THROW(static_cast<void>(driver.diagnose(mm_tagged)),
               std::invalid_argument);
  EXPECT_THROW(DirectedExactSolver(inst.graph, mm_tagged, 4),
               std::invalid_argument);
  // A different-sized graph cannot be the one this driver calibrated for.
  const FaultSet other(small.graph.num_nodes(), {1});
  const DirectedLazyOracle mismatched(small.graph, other,
                                      DiagnosisModel::kPMC,
                                      FaultyBehavior::kAllZero, 1);
  EXPECT_THROW(static_cast<void>(driver.diagnose(mismatched)),
               std::invalid_argument);
  // delta beyond the node count is a configuration error.
  EXPECT_THROW(DirectedDiagnoser(inst.graph, 17), std::invalid_argument);
}

// --------------------------------------------------------------------------
// BGM local diagnosis.
// --------------------------------------------------------------------------

TEST(BgmLocalDiagnosis, SoundInBothRegimesAndWithinTheLookupBound) {
  // The three local rules are unconditionally sound — they certify, never
  // guess — so a definite answer must match the injected truth even when
  // the fault set is far beyond delta.
  const Instance inst("hypercube 4");
  const std::size_t n = inst.graph.num_nodes();
  for (const FaultyBehavior behavior : kAllFaultyBehaviors) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{2},
                                    std::size_t{4}, std::size_t{9}}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SCOPED_TRACE(to_string(behavior) + " count " + std::to_string(count) +
                     " seed " + std::to_string(seed));
        Rng rng(seed * 31 + count);
        const FaultSet faults(n, inject_uniform(n, count, rng));
        const DirectedLazyOracle oracle(inst.graph, faults,
                                        DiagnosisModel::kBGM, behavior, seed);
        for (Node u = 0; u < n; ++u) {
          const LocalDiagnosisResult r =
              bgm_local_diagnose(inst.graph, oracle, u);
          EXPECT_LE(r.lookups, local_lookup_bound(inst.graph, u));
          if (r.status == LocalDiagnosisStatus::kHealthy) {
            EXPECT_FALSE(faults.is_faulty(u));
          } else if (r.status == LocalDiagnosisStatus::kFaulty) {
            EXPECT_TRUE(faults.is_faulty(u));
          }
        }
      }
    }
  }
}

TEST(BgmLocalDiagnosis, FaultFreeAnswersHealthyInOneLookup) {
  // All arcs are 0, so rule 1 fires on the very first incoming read.
  const Instance inst("star 4");
  const FaultSet none(inst.graph.num_nodes(), {});
  const DirectedLazyOracle oracle(inst.graph, none, DiagnosisModel::kBGM,
                                  FaultyBehavior::kRandom, 1);
  for (Node u = 0; u < inst.graph.num_nodes(); ++u) {
    const LocalDiagnosisResult r = bgm_local_diagnose(inst.graph, oracle, u);
    EXPECT_EQ(r.status, LocalDiagnosisStatus::kHealthy);
    EXPECT_EQ(r.lookups, 1u);
  }
}

TEST(BgmLocalDiagnosis, GuardsRejectMisuse) {
  const Instance inst("star 4");
  const FaultSet none(inst.graph.num_nodes(), {});
  const DirectedLazyOracle pmc(inst.graph, none, DiagnosisModel::kPMC,
                               FaultyBehavior::kRandom, 1);
  EXPECT_THROW(static_cast<void>(bgm_local_diagnose(inst.graph, pmc, 0)),
               std::invalid_argument);
  const DirectedLazyOracle bgm(inst.graph, none, DiagnosisModel::kBGM,
                               FaultyBehavior::kRandom, 1);
  EXPECT_THROW(
      static_cast<void>(bgm_local_diagnose(
          inst.graph, bgm, static_cast<Node>(inst.graph.num_nodes()))),
      std::invalid_argument);
}

// --------------------------------------------------------------------------
// Engine integration.
// --------------------------------------------------------------------------

TEST(DirectedEngine, ModelTaggedCacheEntriesAreDistinct) {
  DiagnosisEngine engine;
  // delta 3 is what Q5 certifies under kSpread (the fuzz catalog's entry);
  // the directed bundles share every key component except the model tag.
  const auto mm = engine.calibration("hypercube 5", 3, ParentRule::kSpread);
  const auto pmc = engine.calibration("hypercube 5", 3, ParentRule::kSpread,
                                      true, DiagnosisModel::kPMC);
  const auto bgm = engine.calibration("hypercube 5", 3, ParentRule::kSpread,
                                      true, DiagnosisModel::kBGM);
  EXPECT_EQ(mm->model, DiagnosisModel::kMMStar);
  EXPECT_EQ(pmc->model, DiagnosisModel::kPMC);
  EXPECT_EQ(bgm->model, DiagnosisModel::kBGM);
  EXPECT_TRUE(pmc->is_directed());
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.misses, 3u);
  EXPECT_EQ(counters.entries, 3u);
  // Repeat hits, never rebuilds.
  const auto again = engine.calibration("hypercube 5", 3, ParentRule::kSpread,
                                        true, DiagnosisModel::kPMC);
  EXPECT_EQ(again.get(), pmc.get());
  EXPECT_EQ(engine.counters().hits, 1u);
}

TEST(DirectedEngine, DirectedCalibrationsRefuseTheImplicitView) {
  EXPECT_THROW(static_cast<void>(build_calibration(
                   make_topology_from_spec("hypercube 7"), 0,
                   ParentRule::kSpread, true, GraphMode::kImplicit,
                   DiagnosisModel::kPMC)),
               std::invalid_argument);
  // Through the engine, kAuto resolves directed bundles to CSR instead of
  // throwing — even on an implicit-capable instance.
  EngineOptions options;
  options.graph_mode = GraphMode::kAuto;
  DiagnosisEngine engine(options);
  const auto cal = engine.calibration("hypercube 7", 0, ParentRule::kSpread,
                                      true, DiagnosisModel::kPMC);
  EXPECT_GT(cal->graph.num_nodes(), 0u);
}

TEST(DirectedEngine, DiagnoseDirectedMatchesTheStandaloneDriver) {
  const Instance inst("hypercube 4");
  DiagnosisEngine engine;
  for (const DiagnosisModel model : kDirectedModels) {
    const FaultSet faults(inst.graph.num_nodes(), {3, 9});
    const DirectedLazyOracle oracle(inst.graph, faults, model,
                                    FaultyBehavior::kAntiDiagnostic, 5);
    const DiagnosisResult via_engine =
        engine.diagnose_directed("hypercube 4", oracle);
    DirectedDiagnoser driver(inst.graph, inst.topo->default_fault_bound());
    const DiagnosisResult direct = driver.diagnose(oracle);
    EXPECT_EQ(via_engine.success, direct.success);
    EXPECT_EQ(via_engine.faults, direct.faults);
    EXPECT_EQ(via_engine.lookups, direct.lookups);
  }
}

TEST(DirectedEngine, LocalDiagnoseUsesTheFastPathAndFallsBack) {
  const Instance inst("hypercube 4");
  DiagnosisEngine engine;
  // Definite local answers: fast path, neighbourhood-bounded look-ups.
  const FaultSet faults(inst.graph.num_nodes(), {3});
  const DirectedLazyOracle oracle(inst.graph, faults, DiagnosisModel::kBGM,
                                  FaultyBehavior::kRandom, 7);
  const DiagnosisResult healthy = engine.local_diagnose("hypercube 4",
                                                        oracle, 0);
  ASSERT_TRUE(healthy.success);
  EXPECT_TRUE(healthy.faults.empty());
  EXPECT_TRUE(healthy.used_local_fast_path);
  EXPECT_LE(healthy.lookups, local_lookup_bound(inst.graph, 0));
  const DiagnosisResult faulty = engine.local_diagnose("hypercube 4",
                                                       oracle, 3);
  ASSERT_TRUE(faulty.success);
  EXPECT_EQ(faulty.faults, std::vector<Node>{3});
  EXPECT_TRUE(faulty.used_local_fast_path);

  // An all-ones syndrome defeats every local rule (no 0 arc anywhere), so
  // the engine falls back to the global solve — which here must fail,
  // since no <= delta fault set explains healthy pairs alarming at each
  // other.
  DirectedSyndrome all_ones(inst.graph);
  for (Node u = 0; u < inst.graph.num_nodes(); ++u) {
    for (unsigned p = 0; p < inst.graph.degree(u); ++p) {
      all_ones.set_test(u, p, true);
    }
  }
  const DirectedTableOracle ones_oracle(inst.graph, all_ones,
                                        DiagnosisModel::kBGM);
  const DiagnosisResult fallback =
      engine.local_diagnose("hypercube 4", ones_oracle, 0);
  EXPECT_FALSE(fallback.used_local_fast_path);
  EXPECT_FALSE(fallback.success);

  // Guards surface as exceptions, same as the standalone API.
  const DirectedLazyOracle pmc(inst.graph, faults, DiagnosisModel::kPMC,
                               FaultyBehavior::kRandom, 7);
  EXPECT_THROW(
      static_cast<void>(engine.local_diagnose("hypercube 4", pmc, 0)),
      std::invalid_argument);
}

TEST(DirectedEngine, ServeRoutesDirectedAndLocalRequests) {
  // Q7 certifies at its default bound, so the MM* request can go through
  // serve()'s default calibration; CSR because the MM oracle is a table.
  const Instance inst("hypercube 7");
  EngineOptions options;
  options.graph_mode = GraphMode::kCsr;
  DiagnosisEngine engine(options);
  const FaultSet faults(inst.graph.num_nodes(), {5, 12});
  const FaultSet none(inst.graph.num_nodes(), {});

  // One MM* request, one PMC global, one BGM global, two BGM local, plus
  // the malformed combinations, all down one stream.
  const Syndrome mm_syndrome =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 3);
  const TableOracle mm_oracle(inst.graph, mm_syndrome);
  const DirectedLazyOracle pmc_oracle(inst.graph, faults,
                                      DiagnosisModel::kPMC,
                                      FaultyBehavior::kRandom, 3);
  const DirectedLazyOracle bgm_oracle(inst.graph, faults,
                                      DiagnosisModel::kBGM,
                                      FaultyBehavior::kAllZero, 3);
  std::vector<EngineRequest> requests;
  requests.push_back({"hypercube 7", &mm_oracle, nullptr, kNoNode});
  requests.push_back({"hypercube 7", nullptr, &pmc_oracle, kNoNode});
  requests.push_back({"hypercube 7", nullptr, &bgm_oracle, kNoNode});
  requests.push_back({"hypercube 7", nullptr, &bgm_oracle, Node{5}});
  requests.push_back({"hypercube 7", nullptr, &bgm_oracle, Node{0}});
  requests.push_back({"hypercube 7", &mm_oracle, &pmc_oracle, kNoNode});
  requests.push_back({"hypercube 7", &mm_oracle, nullptr, Node{0}});
  requests.push_back({"hypercube 7", nullptr, nullptr, kNoNode});
  const std::vector<DiagnosisResult> results = engine.serve(requests);
  ASSERT_EQ(results.size(), requests.size());

  const std::vector<Node> expected = {5, 12};
  ASSERT_TRUE(results[0].success);
  EXPECT_EQ(results[0].faults, expected);
  ASSERT_TRUE(results[1].success);
  EXPECT_EQ(results[1].faults, expected);
  ASSERT_TRUE(results[2].success);
  EXPECT_EQ(results[2].faults, expected);
  ASSERT_TRUE(results[3].success);
  EXPECT_EQ(results[3].faults, std::vector<Node>{5});
  EXPECT_TRUE(results[3].used_local_fast_path);
  ASSERT_TRUE(results[4].success);
  EXPECT_TRUE(results[4].faults.empty());
  EXPECT_TRUE(results[4].used_local_fast_path);
  // Malformed requests fail in place without poisoning the stream.
  EXPECT_FALSE(results[5].success);
  EXPECT_FALSE(results[6].success);
  EXPECT_FALSE(results[7].success);
}

}  // namespace
}  // namespace mmdiag
