// Baseline diagnosers: brute force (ground truth + empirical diagnosability),
// Chiang-Tan reconstruction, Yang's cycle algorithm — and cross-agreement
// with the paper's driver.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "baselines/chiang_tan.hpp"
#include "baselines/yang_cycle.hpp"
#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "topology/hypercube.hpp"
#include "topology/star_graph.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

// ---- Brute force --------------------------------------------------------

TEST(BruteForce, EmpiricalDiagnosabilityOfQ4) {
  // Q_4 is 4-diagnosable (Chang et al. [6]): for random fault sets of size
  // <= 4 the consistent candidate is unique and equals the truth.
  test::Instance inst("hypercube 4");
  Rng rng(1);
  for (unsigned count = 0; count <= 4; ++count) {
    for (const auto behavior :
         {FaultyBehavior::kRandom, FaultyBehavior::kAllZero}) {
      const FaultSet faults(16, inject_uniform(16, count, rng));
      const LazyOracle oracle(inst.graph, faults, behavior, count);
      const auto result = brute_force_diagnose(inst.graph, oracle, 4);
      ASSERT_TRUE(result.success) << result.failure_reason;
      EXPECT_EQ(result.faults, faults.nodes());
    }
  }
}

TEST(BruteForce, EmpiricalDiagnosabilityOfStarAndPancake) {
  for (const char* spec : {"star 4", "pancake 4", "nk_star 5 2"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const unsigned delta = inst.topo->info().diagnosability;
    ASSERT_GT(delta, 0u);
    Rng rng(7);
    for (int trial = 0; trial < 4; ++trial) {
      const FaultSet faults(
          inst.graph.num_nodes(),
          inject_uniform(inst.graph.num_nodes(), delta, rng));
      const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom,
                              trial);
      const auto result = brute_force_diagnose(inst.graph, oracle, delta);
      ASSERT_TRUE(result.success) << result.failure_reason;
      EXPECT_EQ(result.faults, faults.nodes());
    }
  }
}

TEST(BruteForce, DetectsAmbiguityBeyondDiagnosability) {
  // The §2 upper-bound argument: with F = N(u) ∪ {u} of size δ+1 allowed,
  // both N(u) and N(u) ∪ {u} are consistent — provided the faulty u mimics
  // what a healthy u would report. All of u's pair subjects are faulty, so
  // a healthy u would answer 1 everywhere: the all-one behaviour is exactly
  // the mimic.
  test::Instance inst("hypercube 4");
  auto faults_vec = inject_surround(inst.graph, 0);
  faults_vec.push_back(0);
  const FaultSet faults(16, faults_vec);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllOne, 0);
  const auto sets = brute_force_consistent_sets(inst.graph, oracle, 5);
  EXPECT_GE(sets.size(), 2u);
  const auto result = brute_force_diagnose(inst.graph, oracle, 5);
  EXPECT_FALSE(result.success);
}

// ---- Chiang-Tan ---------------------------------------------------------

TEST(ChiangTan, ExactOnHypercubeAcrossBehaviors) {
  test::Instance inst("hypercube 7");
  const Hypercube topo(7);
  const auto ct = ChiangTanDiagnoser::for_hypercube(topo, inst.graph);
  Rng rng(3);
  for (unsigned count = 0; count <= 7; ++count) {
    for (const auto behavior : kAllFaultyBehaviors) {
      const FaultSet faults(128, inject_uniform(128, count, rng));
      const LazyOracle oracle(inst.graph, faults, behavior, count);
      const auto result = ct.diagnose(oracle);
      ASSERT_TRUE(result.success)
          << count << " " << to_string(behavior) << ": "
          << result.failure_reason;
      EXPECT_EQ(result.faults, faults.nodes());
    }
  }
}

TEST(ChiangTan, ExactOnStarGraph) {
  test::Instance inst("star 5");
  const StarGraph topo(5);
  const auto ct = ChiangTanDiagnoser::for_star_graph(topo, inst.graph);
  Rng rng(4);
  for (unsigned count = 0; count <= 4; ++count) {
    const FaultSet faults(120, inject_uniform(120, count, rng));
    const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, count);
    const auto result = ct.diagnose(oracle);
    ASSERT_TRUE(result.success) << result.failure_reason;
    EXPECT_EQ(result.faults, faults.nodes());
  }
}

TEST(ChiangTan, PerNodeVerdictsMatchTruth) {
  test::Instance inst("hypercube 6");
  const Hypercube topo(6);
  const auto ct = ChiangTanDiagnoser::for_hypercube(topo, inst.graph);
  Rng rng(11);
  const FaultSet faults(64, inject_uniform(64, 6, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAntiDiagnostic, 1);
  for (Node x = 0; x < 64; ++x) {
    EXPECT_EQ(ct.diagnose_node(oracle, x), faults.is_faulty(x) ? 1 : 0) << x;
  }
}

TEST(ChiangTan, ReadsFullTableScaleLookups) {
  // §6: Chiang-Tan consumes on the order of the whole syndrome table;
  // our driver consults a small slice of it. Compare on the same syndrome.
  test::Instance inst("hypercube 9");
  const Hypercube topo(9);
  const auto ct = ChiangTanDiagnoser::for_hypercube(topo, inst.graph);
  Diagnoser ours(*inst.topo, inst.graph);
  Rng rng(5);
  const FaultSet faults(512, inject_uniform(512, 9, rng));
  const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, 2);
  const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, 2);
  const auto ct_result = ct.diagnose(o1);
  const auto our_result = ours.diagnose(o2);
  ASSERT_TRUE(ct_result.success);
  ASSERT_TRUE(our_result.success);
  EXPECT_EQ(ct_result.faults, our_result.faults);
  EXPECT_LT(our_result.lookups, ct_result.lookups);
}

// ---- Yang ---------------------------------------------------------------

TEST(Yang, GrayCodeCyclesAreHamiltonianInSubcubes) {
  test::Instance inst("hypercube 7");
  const Hypercube topo(7);
  YangCycleDiagnoser yang(topo, inst.graph);
  EXPECT_EQ(yang.subcube_dim(), 3u);  // minimal m with 2^m > 7
  const Node len = Node{1} << yang.subcube_dim();
  for (std::size_t c = 0; c < yang.num_cycles(); ++c) {
    StampSet seen(inst.graph.num_nodes());
    for (Node t = 0; t < len; ++t) {
      const Node u = yang.cycle_node(c, t);
      const Node v = yang.cycle_node(c, (t + 1) & (len - 1));
      EXPECT_TRUE(inst.graph.has_edge(u, v));  // consecutive Gray codes
      EXPECT_TRUE(seen.insert(u));             // no repeats
    }
  }
}

TEST(Yang, ExactOnHypercubesAcrossBehaviors) {
  for (const unsigned n : {7u, 8u}) {
    test::Instance inst("hypercube " + std::to_string(n));
    const Hypercube topo(n);
    YangCycleDiagnoser yang(topo, inst.graph);
    Rng rng(n);
    for (unsigned count = 0; count <= n; count += 2) {
      for (const auto behavior : kAllFaultyBehaviors) {
        const FaultSet faults(
            inst.graph.num_nodes(),
            inject_uniform(inst.graph.num_nodes(), count, rng));
        const LazyOracle oracle(inst.graph, faults, behavior, count);
        const auto result = yang.diagnose(oracle);
        ASSERT_TRUE(result.success) << result.failure_reason;
        EXPECT_EQ(result.faults, faults.nodes()) << "n=" << n;
      }
    }
  }
}

TEST(Yang, RequiresLargeEnoughDimension) {
  test::Instance inst("hypercube 6");
  const Hypercube topo(6);
  EXPECT_THROW((void)YangCycleDiagnoser(topo, inst.graph), std::invalid_argument);
}

// ---- Three-way agreement -------------------------------------------------

TEST(CrossValidation, AllThreeAlgorithmsAgreeOnQ8) {
  test::Instance inst("hypercube 8");
  const Hypercube topo(8);
  Diagnoser ours(*inst.topo, inst.graph);
  const auto ct = ChiangTanDiagnoser::for_hypercube(topo, inst.graph);
  YangCycleDiagnoser yang(topo, inst.graph);
  Rng rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    const FaultSet faults(256, inject_uniform(256, 8, rng));
    const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const LazyOracle o3(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const auto r1 = ours.diagnose(o1);
    const auto r2 = ct.diagnose(o2);
    const auto r3 = yang.diagnose(o3);
    ASSERT_TRUE(r1.success && r2.success && r3.success);
    EXPECT_EQ(r1.faults, faults.nodes());
    EXPECT_EQ(r2.faults, faults.nodes());
    EXPECT_EQ(r3.faults, faults.nodes());
  }
}

}  // namespace
}  // namespace mmdiag
