// MM-model substrate: syndrome generation semantics, oracle equivalence,
// look-up counting, fault sets and faulty behaviours.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "graph/builder.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

std::vector<Node> three_distinct_nodes(Rng& rng) {
  std::vector<Node> v;
  while (v.size() < 3) {
    const auto candidate = static_cast<Node>(rng.below(16));
    if (std::find(v.begin(), v.end(), candidate) == v.end()) {
      v.push_back(candidate);
    }
  }
  return v;
}

TEST(FaultSet, MembershipAndNormalisation) {
  const FaultSet f(10, {7, 3, 3, 5});
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.nodes(), (std::vector<Node>{3, 5, 7}));
  EXPECT_TRUE(f.is_faulty(3));
  EXPECT_FALSE(f.is_faulty(4));
  EXPECT_THROW((void)FaultSet(4, {9}), std::invalid_argument);
}

TEST(Behavior, NamesAndDeterminism) {
  for (const auto b : kAllFaultyBehaviors) {
    EXPECT_FALSE(to_string(b).empty());
  }
  // Random behaviour is a pure function of (seed, u, {v,w}).
  const bool r1 = faulty_test_result(FaultyBehavior::kRandom, 9, 1, 2, 3, false, false);
  const bool r2 = faulty_test_result(FaultyBehavior::kRandom, 9, 1, 3, 2, false, false);
  EXPECT_EQ(r1, r2);  // unordered pair
  EXPECT_FALSE(faulty_test_result(FaultyBehavior::kAllZero, 0, 1, 2, 3, true, true));
  EXPECT_TRUE(faulty_test_result(FaultyBehavior::kAllOne, 0, 1, 2, 3, false, false));
  EXPECT_TRUE(faulty_test_result(FaultyBehavior::kAntiDiagnostic, 0, 1, 2, 3,
                                 false, false));
  EXPECT_FALSE(faulty_test_result(FaultyBehavior::kAntiDiagnostic, 0, 1, 2, 3,
                                  true, false));
}

TEST(Syndrome, HealthyTestersFollowTheModel) {
  test::Instance inst("hypercube 4");
  const FaultSet faults(16, {5, 9});
  const Syndrome s =
      generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 1);
  for (Node u = 0; u < 16; ++u) {
    if (faults.is_faulty(u)) continue;
    const auto adj = inst.graph.neighbors(u);
    for (unsigned i = 0; i + 1 < adj.size(); ++i) {
      for (unsigned j = i + 1; j < adj.size(); ++j) {
        const bool expected =
            faults.is_faulty(adj[i]) || faults.is_faulty(adj[j]);
        EXPECT_EQ(s.test(u, i, j), expected) << "u=" << u;
      }
    }
  }
}

TEST(Syndrome, FaultFreeSyndromeIsAllZero) {
  test::Instance inst("star 4");
  const FaultSet none(24, {});
  const Syndrome s =
      generate_syndrome(inst.graph, none, FaultyBehavior::kAllOne, 3);
  EXPECT_EQ(s.ones(), 0u);
}

TEST(Syndrome, TotalTestsFormula) {
  test::Instance inst("hypercube 4");  // 16 nodes, degree 4
  const Syndrome s(inst.graph);
  EXPECT_EQ(s.total_tests(), 16u * (4 * 3 / 2));
}

TEST(Syndrome, PairIndexSymmetricAccess) {
  test::Instance inst("hypercube 3");
  Syndrome s(inst.graph);
  s.set_test(0, 0, 2, true);
  EXPECT_TRUE(s.test(0, 2, 0));
  EXPECT_FALSE(s.test(0, 1, 2));
}

Graph complete_graph(std::size_t n) {
  std::vector<std::pair<Node, Node>> edges;
  for (Node u = 0; u + 1 < n; ++u) {
    for (Node v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return build_graph_from_edges(n, edges);
}

// Exhaustive row_bits-vs-test() cross-checks at the word-width boundary:
// d = 63 (rows end mid-word) and d = 64 (rows fill a word exactly, the
// len == 64 extract edge case). Every (u, pivot, position) triple is
// compared, and the diagonal slot must read zero.
void expect_rows_match_tests(const Graph& g, const Syndrome& s) {
  const unsigned d = static_cast<unsigned>(g.max_degree());
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (unsigned i = 0; i < d; ++i) {
      const std::uint64_t row = s.row_bits(u, i);
      for (unsigned j = 0; j < d; ++j) {
        const bool bit = ((row >> j) & 1u) != 0;
        if (j == i) {
          ASSERT_FALSE(bit) << "diagonal set: u=" << u << " i=" << i;
        } else {
          ASSERT_EQ(bit, s.test(u, i, j)) << "u=" << u << " i=" << i
                                          << " j=" << j;
        }
      }
    }
  }
}

TEST(Syndrome, RowBitsMatchesTestAtDegree63) {
  const Graph g = complete_graph(64);  // K_64: d = 63
  const FaultSet faults(64, {0, 17, 63});
  const Syndrome s =
      generate_syndrome(g, faults, FaultyBehavior::kRandom, 404);
  expect_rows_match_tests(g, s);
}

TEST(Syndrome, RowBitsMatchesTestAtDegree64) {
  const Graph g = complete_graph(65);  // K_65: d = 64, rows exactly one word
  const FaultSet faults(65, {2, 40, 64});
  const Syndrome s =
      generate_syndrome(g, faults, FaultyBehavior::kAntiDiagnostic, 405);
  expect_rows_match_tests(g, s);
}

TEST(Syndrome, Degree65StaysConsistentThroughPairAccess) {
  // K_66: d = 65 > 64, so row_bits is off the table (callers gate on
  // max_degree() <= 64 and fall back to per-pair test()); the pair path
  // itself must stay sound at this width.
  const Graph g = complete_graph(66);
  const FaultSet faults(66, {1, 65});
  const Syndrome s =
      generate_syndrome(g, faults, FaultyBehavior::kAllOne, 406);
  const TableOracle table(g, s);
  const LazyOracle lazy(g, faults, FaultyBehavior::kAllOne, 406);
  for (Node u = 0; u < 66; ++u) {
    const auto deg = g.degree(u);
    for (unsigned i = 0; i + 1 < deg; ++i) {
      for (unsigned j = i + 1; j < deg; ++j) {
        ASSERT_EQ(table.test(u, i, j), lazy.test(u, i, j))
            << u << " " << i << " " << j;
        ASSERT_EQ(s.test(u, i, j), s.test(u, j, i));
      }
    }
  }
}

TEST(Oracles, TableAndLazyAgreeForEveryBehavior) {
  test::Instance inst("crossed_cube 4");
  Rng rng(11);
  const FaultSet faults(16, three_distinct_nodes(rng));
  for (const auto behavior : kAllFaultyBehaviors) {
    SCOPED_TRACE(to_string(behavior));
    const Syndrome s = generate_syndrome(inst.graph, faults, behavior, 77);
    const TableOracle table(inst.graph, s);
    const LazyOracle lazy(inst.graph, faults, behavior, 77);
    for (Node u = 0; u < 16; ++u) {
      const auto deg = inst.graph.degree(u);
      for (unsigned i = 0; i + 1 < deg; ++i) {
        for (unsigned j = i + 1; j < deg; ++j) {
          EXPECT_EQ(table.test(u, i, j), lazy.test(u, i, j))
              << u << " " << i << " " << j;
        }
      }
    }
  }
}

TEST(Oracles, LookupCounting) {
  test::Instance inst("hypercube 3");
  const Syndrome s(inst.graph);
  const TableOracle oracle(inst.graph, s);
  EXPECT_EQ(oracle.lookups(), 0u);
  (void)oracle.test(0, 0, 1);
  (void)oracle.test(0, 0, 2);
  EXPECT_EQ(oracle.lookups(), 2u);
  oracle.reset_lookups();
  EXPECT_EQ(oracle.lookups(), 0u);
}

TEST(Oracles, FaultFreeOracleAlwaysZero) {
  test::Instance inst("hypercube 3");
  const FaultFreeOracle oracle(inst.graph);
  EXPECT_FALSE(oracle.test(0, 0, 1));
  EXPECT_FALSE(oracle.test(5, 1, 2));
  EXPECT_EQ(oracle.lookups(), 2u);
}

}  // namespace
}  // namespace mmdiag
