// The synchronous network simulator and the five-stage distributed
// diagnosis protocol (§6 future work, implemented as real node programs).
#include <gtest/gtest.h>

#include "core/diagnoser.hpp"
#include "distributed/protocol.hpp"
#include "distributed/simulator.hpp"
#include "graph/builder.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

// ---- Simulator unit tests -------------------------------------------------

// A trivial flooding program: on first contact, forward the token once.
class FloodProgram final : public NodeProgram {
 public:
  explicit FloodProgram(std::size_t n) : seen_(n, false) {}

  void on_round(NetContext& ctx, std::span<const Message> inbox) override {
    if (seen_[ctx.self()]) return;
    // A wake with no mail is the origin; mail is the token.
    (void)inbox;
    seen_[ctx.self()] = true;
    for (const Node w : ctx.neighbors()) {
      ctx.send(w, MsgType::kElect, 1);
    }
  }

  [[nodiscard]] bool all_seen() const {
    return std::all_of(seen_.begin(), seen_.end(), [](bool b) { return b; });
  }
  [[nodiscard]] bool seen(Node v) const { return seen_[v]; }

 private:
  std::vector<bool> seen_;
};

TEST(SyncNetwork, FloodReachesEveryoneInDiameterRounds) {
  // Path of 6 nodes: flooding from one end takes 6 rounds (origin + 5 hops).
  std::vector<std::pair<Node, Node>> edges;
  for (Node i = 0; i + 1 < 6; ++i) edges.emplace_back(i, i + 1);
  const Graph g = build_graph_from_edges(6, edges);
  const FaultFreeOracle oracle(g);
  FloodProgram program(6);
  SyncNetwork net(g, oracle, program);
  net.wake(0);
  const auto rounds = net.run_to_quiescence();
  EXPECT_TRUE(program.all_seen());
  EXPECT_EQ(rounds, 7u);  // 6 firing rounds + the final empty-delivery round
  // Each non-origin node forwards once: origin sends 1, middles send 2 each.
  EXPECT_EQ(net.total_messages(), 1u + 4 * 2 + 1);
}

TEST(SyncNetwork, SendToNonNeighbourThrows) {
  const Graph g = build_graph_from_edges(3, {{0, 1}, {1, 2}});
  const FaultFreeOracle oracle(g);
  class Bad final : public NodeProgram {
    void on_round(NetContext& ctx, std::span<const Message>) override {
      ctx.send(2, MsgType::kElect, 0);  // 0 -- 2 is not a link
    }
  } program;
  SyncNetwork net(g, oracle, program);
  net.wake(0);
  EXPECT_THROW((void)net.run_to_quiescence(), std::logic_error);
}

TEST(SyncNetwork, RoundLimitGuard) {
  const Graph g = build_graph_from_edges(2, {{0, 1}});
  const FaultFreeOracle oracle(g);
  class PingPong final : public NodeProgram {
    void on_round(NetContext& ctx, std::span<const Message>) override {
      ctx.send(ctx.self() == 0 ? 1 : 0, MsgType::kElect, 0);
    }
  } program;
  SyncNetwork net(g, oracle, program);
  net.wake(0);
  EXPECT_THROW((void)net.run_to_quiescence(50), std::runtime_error);
}

TEST(SyncNetwork, MessagesNeverCrossDisconnectedComponents) {
  // Two disjoint triangles. A flood woken in the first must round-trip
  // freely inside it and never reach the second — there is no link to
  // carry a message across, and the simulator must not invent one.
  const Graph g = build_graph_from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const FaultFreeOracle oracle(g);
  FloodProgram program(6);
  SyncNetwork net(g, oracle, program);
  net.wake(0);
  (void)net.run_to_quiescence();
  for (Node v = 0; v < 3; ++v) EXPECT_TRUE(program.seen(v)) << v;
  for (Node v = 3; v < 6; ++v) EXPECT_FALSE(program.seen(v)) << v;
  // Origin sends 2, each other triangle member forwards to 2 neighbours.
  EXPECT_EQ(net.total_messages(), 6u);

  // Waking the second component floods it too, without re-activating the
  // first (its nodes forward only on first contact).
  const std::uint64_t before = net.total_messages();
  net.wake(3);
  (void)net.run_to_quiescence();
  for (Node v = 0; v < 6; ++v) EXPECT_TRUE(program.seen(v)) << v;
  EXPECT_EQ(net.total_messages(), before + 6u);
}

TEST(SyncNetwork, ZeroNodeNetworkIsImmediatelyQuiescent) {
  const Graph g = build_graph_from_edges(0, {});
  const FaultFreeOracle oracle(g);
  class Never final : public NodeProgram {
    void on_round(NetContext&, std::span<const Message>) override {
      FAIL() << "a node ran on an empty network";
    }
  } program;
  SyncNetwork net(g, oracle, program);
  EXPECT_EQ(net.run_to_quiescence(), 0u);
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_EQ(net.total_rounds(), 0u);
}

// ---- Full protocol --------------------------------------------------------

class ProtocolSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ProtocolSweep, DistributedDiagnosisIsExact) {
  test::Instance inst(GetParam());
  const unsigned delta = inst.topo->default_fault_bound();
  Rng rng(0xD157);
  for (const auto behavior : kAllFaultyBehaviors) {
    const FaultSet faults(inst.graph.num_nodes(),
                          inject_uniform(inst.graph.num_nodes(), delta, rng));
    const LazyOracle oracle(inst.graph, faults, behavior, 7);
    const auto stats =
        run_distributed_diagnosis(*inst.topo, inst.graph, oracle);
    ASSERT_TRUE(stats.success)
        << GetParam() << " " << to_string(behavior) << ": "
        << stats.failure_reason;
    EXPECT_EQ(stats.faults, faults.nodes()) << to_string(behavior);
    EXPECT_GE(stats.certified_components, 1u);
    EXPECT_GT(stats.rounds, 0u);
    EXPECT_GT(stats.messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(SupportedFamilies, ProtocolSweep,
                         ::testing::Values("hypercube 7", "hypercube 9",
                                           "crossed_cube 9", "star 5",
                                           "kary_ncube 2 8", "pancake 5",
                                           "nk_star 6 3"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

TEST(Protocol, AgreesWithSequentialDriver) {
  // Q_9: Q_8 is certifiable only under the sequential spread rule, which no
  // coordination-free distributed joiner can realise (DESIGN.md §4.2).
  test::Instance inst("hypercube 9");
  Diagnoser sequential(*inst.topo, inst.graph);
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const FaultSet faults(512, inject_uniform(512, 9, rng));
    const LazyOracle o1(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const LazyOracle o2(inst.graph, faults, FaultyBehavior::kRandom, trial);
    const auto dist = run_distributed_diagnosis(*inst.topo, inst.graph, o1);
    const auto seq = sequential.diagnose(o2);
    ASSERT_TRUE(dist.success) << dist.failure_reason;
    ASSERT_TRUE(seq.success);
    EXPECT_EQ(dist.faults, seq.faults);
  }
}

TEST(Protocol, FaultFreeRunDiagnosesEmptyWithWinnerSeedZero) {
  test::Instance inst("hypercube 7");
  const FaultSet none(128, {});
  const LazyOracle oracle(inst.graph, none, FaultyBehavior::kRandom, 0);
  const auto stats = run_distributed_diagnosis(*inst.topo, inst.graph, oracle);
  ASSERT_TRUE(stats.success);
  EXPECT_TRUE(stats.faults.empty());
  EXPECT_EQ(stats.winner_seed, 0u);  // the least certified seed
  // Every component certifies when fault-free.
  EXPECT_GE(stats.certified_components, 8u);
}

TEST(Protocol, OverloadFailsHonestly) {
  test::Instance inst("hypercube 7");
  Rng rng(5);
  // 60 faults >> delta: either every probe fails to certify, or the
  // certificate still holds (it is sound only under the promise) — in that
  // case the boundary check may still catch it. Accept failure or an exact
  // answer, never a wrong success (checked via consistency).
  const FaultSet faults(128, inject_uniform(128, 60, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kAllZero, 1);
  const auto stats = run_distributed_diagnosis(*inst.topo, inst.graph, oracle);
  if (stats.success) {
    EXPECT_EQ(stats.faults, faults.nodes());
  } else {
    EXPECT_FALSE(stats.failure_reason.empty());
  }
}

TEST(Protocol, MessageCountsAreLinkLocalAndBounded) {
  test::Instance inst("hypercube 9");
  Rng rng(77);
  const FaultSet faults(512, inject_uniform(512, 9, rng));
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 3);
  const auto stats = run_distributed_diagnosis(*inst.topo, inst.graph, oracle);
  ASSERT_TRUE(stats.success);
  // Offers/acks/joins are per-edge events; election floods each edge at most
  // once per improvement; reports are delta-bounded per tree edge. A loose
  // but meaningful bound: a small multiple of E plus report traffic.
  const std::uint64_t edges = inst.graph.num_edges();
  EXPECT_LT(stats.messages, 10 * edges + 20ULL * 512);
}

}  // namespace
}  // namespace mmdiag
